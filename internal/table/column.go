package table

import "time"

// Column is a named, typed vector of cells stored columnar: one typed Go
// slice (selected by Kind) plus a null bitmap, instead of a slice of boxed
// Value structs. Hot paths — vectorized filters, aggregates, joins — read
// the typed slices directly via Ints/Floats/Strings; row-at-a-time callers
// keep the boxed view through Value/Append/Set.
//
// A column whose cells all share the declared Kind stays in typed storage.
// Appending (or Setting) a non-null cell of a different kind degrades the
// column to boxed storage ([]Value), preserving the old heterogeneous
// semantics exactly; typed accessors then report ok=false and callers fall
// back to the scalar path.
type Column struct {
	Name string
	Kind Kind

	length int
	nulls  []bool // parallel to the active typed slice; true = NULL

	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	times  []time.Time

	boxed []Value // non-nil => authoritative mixed-kind storage
}

// NewColumn returns an empty column with the given name and kind.
func NewColumn(name string, kind Kind) Column {
	return Column{Name: name, Kind: kind}
}

// ColumnFromInts builds an int64 column from raw storage. nulls may be nil
// (no NULLs); otherwise it must parallel vals. The slices are adopted, not
// copied.
func ColumnFromInts(name string, vals []int64, nulls []bool) Column {
	if nulls == nil {
		nulls = make([]bool, len(vals))
	}
	return Column{Name: name, Kind: KindInt, length: len(vals), ints: vals, nulls: nulls}
}

// ColumnFromFloats builds a float64 column from raw storage (adopted).
func ColumnFromFloats(name string, vals []float64, nulls []bool) Column {
	if nulls == nil {
		nulls = make([]bool, len(vals))
	}
	return Column{Name: name, Kind: KindFloat, length: len(vals), floats: vals, nulls: nulls}
}

// ColumnFromStrings builds a string column from raw storage (adopted).
func ColumnFromStrings(name string, vals []string, nulls []bool) Column {
	if nulls == nil {
		nulls = make([]bool, len(vals))
	}
	return Column{Name: name, Kind: KindString, length: len(vals), strs: vals, nulls: nulls}
}

// ColumnFromBools builds a boolean column from raw storage (adopted).
func ColumnFromBools(name string, vals []bool, nulls []bool) Column {
	if nulls == nil {
		nulls = make([]bool, len(vals))
	}
	return Column{Name: name, Kind: KindBool, length: len(vals), bools: vals, nulls: nulls}
}

// ColumnFromTimes builds a timestamp column from raw storage (adopted).
func ColumnFromTimes(name string, vals []time.Time, nulls []bool) Column {
	if nulls == nil {
		nulls = make([]bool, len(vals))
	}
	return Column{Name: name, Kind: KindTime, length: len(vals), times: vals, nulls: nulls}
}

// ColumnOf builds a column of the given kind from boxed values. Values of
// mismatched kinds degrade the column to boxed storage, preserving them
// exactly.
func ColumnOf(name string, kind Kind, vals []Value) Column {
	c := NewColumn(name, kind)
	c.Grow(len(vals))
	for _, v := range vals {
		c.Append(v)
	}
	return c
}

// Len returns the number of cells.
func (c *Column) Len() int { return c.length }

// IsTyped reports whether the column is in typed (non-boxed) storage.
func (c *Column) IsTyped() bool { return c.boxed == nil }

// Ints returns the typed storage of an int column: values, null bitmap, ok.
// ok is false for boxed or non-int columns. Callers must not mutate.
func (c *Column) Ints() ([]int64, []bool, bool) {
	if c.boxed != nil || c.Kind != KindInt {
		return nil, nil, false
	}
	return c.ints, c.nulls, true
}

// Floats returns the typed storage of a float column.
func (c *Column) Floats() ([]float64, []bool, bool) {
	if c.boxed != nil || c.Kind != KindFloat {
		return nil, nil, false
	}
	return c.floats, c.nulls, true
}

// Strings returns the typed storage of a string column.
func (c *Column) Strings() ([]string, []bool, bool) {
	if c.boxed != nil || c.Kind != KindString {
		return nil, nil, false
	}
	return c.strs, c.nulls, true
}

// Bools returns the typed storage of a boolean column.
func (c *Column) Bools() ([]bool, []bool, bool) {
	if c.boxed != nil || c.Kind != KindBool {
		return nil, nil, false
	}
	return c.bools, c.nulls, true
}

// Times returns the typed storage of a timestamp column.
func (c *Column) Times() ([]time.Time, []bool, bool) {
	if c.boxed != nil || c.Kind != KindTime {
		return nil, nil, false
	}
	return c.times, c.nulls, true
}

// Value returns cell i as a boxed Value.
func (c *Column) Value(i int) Value {
	if c.boxed != nil {
		return c.boxed[i]
	}
	return c.typedValue(i)
}

func (c *Column) typedValue(i int) Value {
	if c.nulls[i] {
		return Value{}
	}
	switch c.Kind {
	case KindInt:
		return Int(c.ints[i])
	case KindFloat:
		return Float(c.floats[i])
	case KindString:
		return Str(c.strs[i])
	case KindBool:
		return Bool(c.bools[i])
	case KindTime:
		return Time(c.times[i])
	default:
		return Value{}
	}
}

// Values materializes the column as a fresh []Value slice.
func (c *Column) Values() []Value {
	out := make([]Value, c.length)
	for i := range out {
		out[i] = c.Value(i)
	}
	return out
}

// degrade converts typed storage to boxed storage in place.
func (c *Column) degrade() {
	if c.boxed != nil {
		return
	}
	vals := make([]Value, c.length)
	for i := range vals {
		vals[i] = c.typedValue(i)
	}
	c.boxed = vals
	c.nulls, c.ints, c.floats, c.strs, c.bools, c.times = nil, nil, nil, nil, nil, nil
}

// Append appends one cell. Values whose kind matches the column kind go to
// typed storage; NULLs set the null bit; anything else degrades the column
// to boxed storage.
func (c *Column) Append(v Value) {
	if c.boxed == nil && c.Kind == KindNull && !v.IsNull() {
		c.degrade()
	}
	if c.boxed != nil {
		c.boxed = append(c.boxed, v)
		c.length++
		return
	}
	if !v.IsNull() && v.Kind != c.Kind {
		c.degrade()
		c.boxed = append(c.boxed, v)
		c.length++
		return
	}
	c.nulls = append(c.nulls, v.IsNull())
	switch c.Kind {
	case KindInt:
		c.ints = append(c.ints, v.I)
	case KindFloat:
		c.floats = append(c.floats, v.F)
	case KindString:
		c.strs = append(c.strs, v.S)
	case KindBool:
		c.bools = append(c.bools, v.B)
	case KindTime:
		c.times = append(c.times, v.T)
	}
	c.length++
}

// AppendNull appends a NULL cell.
func (c *Column) AppendNull() { c.Append(Value{}) }

// AppendColumn appends every cell of src. When both columns are typed with
// the same kind the copy is slab-at-a-time on the raw slices; otherwise it
// falls back to cell-at-a-time Append with coercion to c's kind (so a
// mismatched src degrades c exactly as the equivalent Append loop would).
func (c *Column) AppendColumn(src *Column) {
	if c.boxed == nil && src.boxed == nil && c.Kind == src.Kind {
		c.nulls = append(c.nulls, src.nulls...)
		switch c.Kind {
		case KindInt:
			c.ints = append(c.ints, src.ints...)
		case KindFloat:
			c.floats = append(c.floats, src.floats...)
		case KindString:
			c.strs = append(c.strs, src.strs...)
		case KindBool:
			c.bools = append(c.bools, src.bools...)
		case KindTime:
			c.times = append(c.times, src.times...)
		}
		c.length += src.length
		return
	}
	for i := 0; i < src.length; i++ {
		c.Append(src.Value(i).Coerce(c.Kind))
	}
}

// Set overwrites cell i.
func (c *Column) Set(i int, v Value) {
	if c.boxed == nil && !v.IsNull() && v.Kind != c.Kind {
		c.degrade()
	}
	if c.boxed != nil {
		c.boxed[i] = v
		return
	}
	c.nulls[i] = v.IsNull()
	switch c.Kind {
	case KindInt:
		c.ints[i] = v.I
	case KindFloat:
		c.floats[i] = v.F
	case KindString:
		c.strs[i] = v.S
	case KindBool:
		c.bools[i] = v.B
	case KindTime:
		c.times[i] = v.T
	}
}

// Grow preallocates capacity for n additional cells.
func (c *Column) Grow(n int) {
	if c.boxed != nil {
		c.boxed = append(make([]Value, 0, c.length+n), c.boxed...)
		return
	}
	c.nulls = append(make([]bool, 0, c.length+n), c.nulls...)
	switch c.Kind {
	case KindInt:
		c.ints = append(make([]int64, 0, c.length+n), c.ints...)
	case KindFloat:
		c.floats = append(make([]float64, 0, c.length+n), c.floats...)
	case KindString:
		c.strs = append(make([]string, 0, c.length+n), c.strs...)
	case KindBool:
		c.bools = append(make([]bool, 0, c.length+n), c.bools...)
	case KindTime:
		c.times = append(make([]time.Time, 0, c.length+n), c.times...)
	}
}

// Gather returns a new column holding the cells at the given indices in
// order. A negative index yields NULL (used for outer-join padding).
func (c *Column) Gather(idx []int) Column {
	out := Column{Name: c.Name, Kind: c.Kind, length: len(idx)}
	if c.boxed != nil {
		vals := make([]Value, len(idx))
		for j, i := range idx {
			if i >= 0 {
				vals[j] = c.boxed[i]
			}
		}
		out.boxed = vals
		return out
	}
	out.nulls = make([]bool, len(idx))
	switch c.Kind {
	case KindInt:
		out.ints = make([]int64, len(idx))
		for j, i := range idx {
			if i < 0 || c.nulls[i] {
				out.nulls[j] = true
			} else {
				out.ints[j] = c.ints[i]
			}
		}
	case KindFloat:
		out.floats = make([]float64, len(idx))
		for j, i := range idx {
			if i < 0 || c.nulls[i] {
				out.nulls[j] = true
			} else {
				out.floats[j] = c.floats[i]
			}
		}
	case KindString:
		out.strs = make([]string, len(idx))
		for j, i := range idx {
			if i < 0 || c.nulls[i] {
				out.nulls[j] = true
			} else {
				out.strs[j] = c.strs[i]
			}
		}
	case KindBool:
		out.bools = make([]bool, len(idx))
		for j, i := range idx {
			if i < 0 || c.nulls[i] {
				out.nulls[j] = true
			} else {
				out.bools[j] = c.bools[i]
			}
		}
	case KindTime:
		out.times = make([]time.Time, len(idx))
		for j, i := range idx {
			if i < 0 || c.nulls[i] {
				out.nulls[j] = true
			} else {
				out.times[j] = c.times[i]
			}
		}
	default:
		for j := range idx {
			out.nulls[j] = true
		}
	}
	return out
}

// GatherPairs returns a new column holding, for each output position j,
// cell idx[j] — or NULL where nulls[j] is true, in which case idx[j] is
// ignored. It is the join materialization primitive: outer joins express
// padding as an explicit null mask instead of sentinel indices, so idx
// stays a plain gather list of valid rows. A nil nulls mask means no
// padding and is equivalent to Gather over non-negative indices.
func (c *Column) GatherPairs(idx []int, nulls []bool) Column {
	if nulls == nil {
		return c.Gather(idx)
	}
	out := Column{Name: c.Name, Kind: c.Kind, length: len(idx)}
	if c.boxed != nil {
		vals := make([]Value, len(idx))
		for j, i := range idx {
			if !nulls[j] {
				vals[j] = c.boxed[i]
			}
		}
		out.boxed = vals
		return out
	}
	out.nulls = make([]bool, len(idx))
	switch c.Kind {
	case KindInt:
		out.ints = make([]int64, len(idx))
		for j, i := range idx {
			if nulls[j] || c.nulls[i] {
				out.nulls[j] = true
			} else {
				out.ints[j] = c.ints[i]
			}
		}
	case KindFloat:
		out.floats = make([]float64, len(idx))
		for j, i := range idx {
			if nulls[j] || c.nulls[i] {
				out.nulls[j] = true
			} else {
				out.floats[j] = c.floats[i]
			}
		}
	case KindString:
		out.strs = make([]string, len(idx))
		for j, i := range idx {
			if nulls[j] || c.nulls[i] {
				out.nulls[j] = true
			} else {
				out.strs[j] = c.strs[i]
			}
		}
	case KindBool:
		out.bools = make([]bool, len(idx))
		for j, i := range idx {
			if nulls[j] || c.nulls[i] {
				out.nulls[j] = true
			} else {
				out.bools[j] = c.bools[i]
			}
		}
	case KindTime:
		out.times = make([]time.Time, len(idx))
		for j, i := range idx {
			if nulls[j] || c.nulls[i] {
				out.nulls[j] = true
			} else {
				out.times[j] = c.times[i]
			}
		}
	default:
		for j := range idx {
			out.nulls[j] = true
		}
	}
	return out
}

// GatherSel returns a new column holding the selected cells in order. Span
// runs are copied range-at-a-time (memcpy on the typed slices) instead of
// cell-at-a-time; dense selections delegate to Gather. A nil selection
// selects nothing. Unlike View, the result always owns its storage.
func (c *Column) GatherSel(s *Selection) Column {
	spans, ok := s.Spans()
	if !ok {
		return c.Gather(s.Indices())
	}
	n := s.Len()
	out := Column{Name: c.Name, Kind: c.Kind, length: n}
	if c.boxed != nil {
		out.boxed = make([]Value, 0, n)
		for _, sp := range spans {
			out.boxed = append(out.boxed, c.boxed[sp.Lo:sp.Hi]...)
		}
		return out
	}
	out.nulls = make([]bool, 0, n)
	for _, sp := range spans {
		out.nulls = append(out.nulls, c.nulls[sp.Lo:sp.Hi]...)
	}
	switch c.Kind {
	case KindInt:
		out.ints = make([]int64, 0, n)
		for _, sp := range spans {
			out.ints = append(out.ints, c.ints[sp.Lo:sp.Hi]...)
		}
	case KindFloat:
		out.floats = make([]float64, 0, n)
		for _, sp := range spans {
			out.floats = append(out.floats, c.floats[sp.Lo:sp.Hi]...)
		}
	case KindString:
		out.strs = make([]string, 0, n)
		for _, sp := range spans {
			out.strs = append(out.strs, c.strs[sp.Lo:sp.Hi]...)
		}
	case KindBool:
		out.bools = make([]bool, 0, n)
		for _, sp := range spans {
			out.bools = append(out.bools, c.bools[sp.Lo:sp.Hi]...)
		}
	case KindTime:
		out.times = make([]time.Time, 0, n)
		for _, sp := range spans {
			out.times = append(out.times, c.times[sp.Lo:sp.Hi]...)
		}
	}
	return out
}

// View returns a zero-copy view of cells [lo, hi): the result shares
// storage with c. Views are strictly read-only — appending to or setting a
// cell of a view would clobber (or race with) the parent column — and are
// only handed to code that treats relation columns as immutable.
func (c *Column) View(lo, hi int) Column {
	out := Column{Name: c.Name, Kind: c.Kind, length: hi - lo}
	if c.boxed != nil {
		out.boxed = c.boxed[lo:hi:hi]
		return out
	}
	out.nulls = c.nulls[lo:hi:hi]
	switch c.Kind {
	case KindInt:
		out.ints = c.ints[lo:hi:hi]
	case KindFloat:
		out.floats = c.floats[lo:hi:hi]
	case KindString:
		out.strs = c.strs[lo:hi:hi]
	case KindBool:
		out.bools = c.bools[lo:hi:hi]
	case KindTime:
		out.times = c.times[lo:hi:hi]
	}
	return out
}

// SliceRange returns a copy of cells [lo, hi).
func (c *Column) SliceRange(lo, hi int) Column {
	out := Column{Name: c.Name, Kind: c.Kind, length: hi - lo}
	if c.boxed != nil {
		out.boxed = append([]Value(nil), c.boxed[lo:hi]...)
		return out
	}
	out.nulls = append([]bool(nil), c.nulls[lo:hi]...)
	switch c.Kind {
	case KindInt:
		out.ints = append([]int64(nil), c.ints[lo:hi]...)
	case KindFloat:
		out.floats = append([]float64(nil), c.floats[lo:hi]...)
	case KindString:
		out.strs = append([]string(nil), c.strs[lo:hi]...)
	case KindBool:
		out.bools = append([]bool(nil), c.bools[lo:hi]...)
	case KindTime:
		out.times = append([]time.Time(nil), c.times[lo:hi]...)
	}
	return out
}

// CloneData deep-copies the column.
func (c *Column) CloneData() Column {
	return c.SliceRange(0, c.length)
}

// IsNullAt reports whether cell i is NULL without boxing it.
func (c *Column) IsNullAt(i int) bool {
	if c.boxed != nil {
		return c.boxed[i].IsNull()
	}
	return c.nulls[i]
}

// FloatAt returns cell i as a float64 using the typed storage when
// possible. ok is false for NULLs and non-numeric cells.
func (c *Column) FloatAt(i int) (float64, bool) {
	if c.boxed == nil {
		if c.nulls[i] {
			return 0, false
		}
		switch c.Kind {
		case KindInt:
			return float64(c.ints[i]), true
		case KindFloat:
			return c.floats[i], true
		}
	}
	v := c.Value(i)
	if v.IsNull() {
		return 0, false
	}
	return v.AsFloat()
}
