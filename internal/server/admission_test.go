package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdmissionBackpressure saturates the semaphore directly: with every
// slot held, an acquire must fail with the typed BackpressureError within
// (roughly) the queue timeout, and never sooner than the timeout allows.
func TestAdmissionBackpressure(t *testing.T) {
	const slots = 4
	const queueTimeout = 100 * time.Millisecond
	adm := newAdmission(slots, queueTimeout)
	releases := make([]func(), slots)
	for i := range releases {
		rel, err := adm.acquire(context.Background())
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		releases[i] = rel
	}
	start := time.Now()
	_, err := adm.acquire(context.Background())
	elapsed := time.Since(start)
	bp, ok := err.(*BackpressureError)
	if !ok {
		t.Fatalf("over-limit acquire error = %v, want *BackpressureError", err)
	}
	if bp.Limit != slots {
		t.Fatalf("BackpressureError.Limit = %d, want %d", bp.Limit, slots)
	}
	if elapsed < queueTimeout || elapsed > 10*queueTimeout {
		t.Fatalf("rejection took %v, want ≈%v", elapsed, queueTimeout)
	}
	if adm.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d", adm.rejected.Load())
	}
	// Freeing one slot un-wedges the queue.
	releases[0]()
	rel, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel()
	rel() // release is idempotent: a double call must not free a second slot
	if got := adm.inFlight(); got != slots-1 {
		t.Fatalf("inFlight after idempotent double release = %d, want %d", got, slots-1)
	}
	for _, r := range releases[1:] {
		r()
	}
}

// TestAdmissionQueueDrainsUnderContention hammers a small semaphore from
// many goroutines (run under -race in CI): every acquire either succeeds
// and releases, or fails typed; the pool never leaks a slot.
func TestAdmissionQueueDrainsUnderContention(t *testing.T) {
	adm := newAdmission(3, 50*time.Millisecond)
	var wg sync.WaitGroup
	var ok, rejected atomic.Int64
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				rel, err := adm.acquire(context.Background())
				switch err.(type) {
				case nil:
					ok.Add(1)
					time.Sleep(time.Millisecond)
					rel()
				case *BackpressureError:
					rejected.Add(1)
				default:
					t.Errorf("unexpected acquire error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := adm.inFlight(); got != 0 {
		t.Fatalf("leaked %d slots", got)
	}
	if ok.Load() == 0 {
		t.Fatal("no acquire ever succeeded under contention")
	}
	t.Logf("admitted=%d rejected=%d", ok.Load(), rejected.Load())
}

// TestAdmissionCancelledWaiterLeavesQueue: a waiter whose context dies
// must return ctx.Err promptly, not consume the full queue timeout.
func TestAdmissionCancelledWaiterLeavesQueue(t *testing.T) {
	adm := newAdmission(1, 10*time.Second) // queue timeout long enough to be the failure mode
	rel, err := adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	start := time.Now()
	_, err = adm.acquire(ctx)
	if err != context.Canceled {
		t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled waiter blocked %v", elapsed)
	}
}

// TestServerBackpressureEndToEnd saturates the HTTP server's admission
// gate with slow streaming queries and asserts (a) queued requests get
// the typed 429 backpressure error within the queue timeout and (b)
// cancelling the in-flight streams frees the slots for new queries.
// Runs under -race in the CI concurrency job.
func TestServerBackpressureEndToEnd(t *testing.T) {
	const slots = 2
	_, ts, _ := newTestServer(t, 400_000, Config{
		MaxConcurrentQueries: slots,
		QueueTimeout:         150 * time.Millisecond,
	})
	// Occupy every slot with a heavy materializing query whose stream we
	// deliberately never drain past the first byte.
	type holder struct {
		cancel context.CancelFunc
		resp   *http.Response
	}
	var holders []holder
	heavy, _ := json.Marshal(map[string]any{"sql": "SELECT id, kind, value FROM events ORDER BY value, id"})
	for i := 0; i < slots; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(heavy))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := resp.Body.Read(buf); err != nil {
			t.Fatalf("holder %d stream dead: %v", i, err)
		}
		holders = append(holders, holder{cancel, resp})
	}
	// Slots full: a new query must come back 429 with the typed error,
	// and must take at least the queue timeout to do so.
	small, _ := json.Marshal(map[string]any{"sql": "SELECT COUNT(*) FROM events"})
	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	waited := time.Since(start)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit status = %d, want 429", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	resp.Body.Close()
	if lines[0]["error_code"] != ErrCodeBackpressure {
		t.Fatalf("over-limit line = %v", lines[0])
	}
	if _, ok := lines[0]["queue_wait_ms"].(float64); !ok {
		t.Fatalf("backpressure line missing queue_wait_ms: %v", lines[0])
	}
	if waited < 100*time.Millisecond {
		t.Fatalf("rejection arrived in %v — did not queue", waited)
	}
	// Cancel the holders mid-stream: cancellation must free both slots.
	for _, h := range holders {
		h.cancel()
		h.resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(small))
		if err != nil {
			t.Fatal(err)
		}
		status := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if status == http.StatusOK {
			break // a slot came free: cancellation released it
		}
		if time.Now().After(deadline) {
			t.Fatalf("slots never freed after mid-stream cancellation (status %d)", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
