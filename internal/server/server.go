// Package server exposes a datalab Platform over HTTP with an agent-first
// JSONL wire protocol: every response is a stream of self-describing JSON
// lines (`code: startup/progress/ok/error`, suffix-named fields like
// `rows_total` and `duration_ms`, `*_secret` values redacted), so agent
// clients parse it line by line without an external schema.
//
// The server is multi-session over one shared catalog: sessions scope
// cancellation and cursor lifetime (closing a session aborts its in-flight
// queries and releases its cursors), not data. Admission control — a
// max-concurrent-query semaphore with a bounded queue — sits above the
// engine's worker pool and rejects overload with a typed backpressure
// error instead of letting latency collapse. A dropped connection cancels
// the request context, which the executor observes mid-scan.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"datalab"
	"datalab/internal/sqlengine"
)

// Config carries the server's tunables. Zero values select the defaults
// noted on each field.
type Config struct {
	// MaxConcurrentQueries caps how many queries execute at once (default
	// 2×GOMAXPROCS). Requests past the cap queue for QueueTimeout and then
	// fail with a typed backpressure error.
	MaxConcurrentQueries int
	// QueueTimeout bounds how long an over-limit query waits for a slot
	// (default 1s).
	QueueTimeout time.Duration
	// SessionIdleTimeout closes sessions with no activity (default 15m;
	// negative disables sweeping).
	SessionIdleTimeout time.Duration
	// PageRows is the default cursor page size (default 4096).
	PageRows int
	// IngestPublishRows is how many streamed ingest rows are batched into
	// one published snapshot (default 4096).
	IngestPublishRows int
	// AuthTokenSecret, when non-empty, requires `Authorization: Bearer
	// <token>` on every endpoint except /healthz. The suffix is the
	// contract: the value is redacted from logs and wire lines.
	AuthTokenSecret string
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentQueries <= 0 {
		c.MaxConcurrentQueries = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = time.Second
	}
	if c.SessionIdleTimeout == 0 {
		c.SessionIdleTimeout = 15 * time.Minute
	}
	if c.PageRows <= 0 {
		c.PageRows = 4096
	}
	if c.IngestPublishRows <= 0 {
		c.IngestPublishRows = 4096
	}
	return c
}

// Server serves one Platform over HTTP. Create with New, mount Handler,
// and Close on shutdown (cancels every session and stops the sweeper).
type Server struct {
	platform *datalab.Platform
	cfg      Config
	adm      *admission
	sessions *sessionRegistry
	logger   *jsonLogger
	mux      *http.ServeMux
	started  time.Time

	cursorMu sync.Mutex
	cursors  map[string]*cursor

	queriesTotal    atomic.Int64
	queriesCanceled atomic.Int64
	queriesFailed   atomic.Int64
	rowsStreamed    atomic.Int64
	ingestRows      atomic.Int64

	sweepDone chan struct{}
	closeOnce sync.Once
}

// New builds a Server over the platform, logging operational JSONL lines
// (startup, per-request ok/cancel/error events) to logw; nil discards
// them. The startup line echoes the effective config with secrets
// redacted.
func New(p *datalab.Platform, cfg Config, logw io.Writer) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		platform:  p,
		cfg:       cfg,
		adm:       newAdmission(cfg.MaxConcurrentQueries, cfg.QueueTimeout),
		sessions:  newSessionRegistry(cfg.SessionIdleTimeout),
		logger:    newJSONLogger(logw),
		mux:       http.NewServeMux(),
		started:   time.Now(),
		cursors:   map[string]*cursor{},
		sweepDone: make(chan struct{}),
	}
	s.routes()
	s.logger.log(CodeStartup, line{
		"event": "server",
		"config": line{
			"max_concurrent_queries": cfg.MaxConcurrentQueries,
			"queue_timeout_ms":       durationMS(cfg.QueueTimeout),
			"session_idle_ms":        durationMS(cfg.SessionIdleTimeout),
			"page_rows":              cfg.PageRows,
			"ingest_publish_rows":    cfg.IngestPublishRows,
			"auth_token_secret":      cfg.AuthTokenSecret,
			"auth_enabled":           cfg.AuthTokenSecret != "",
		},
		"tables": p.Tables(),
	})
	go s.sweepLoop()
	return s
}

// sweepLoop closes idle sessions in the background until Close.
func (s *Server) sweepLoop() {
	if s.cfg.SessionIdleTimeout <= 0 {
		<-s.sweepDone
		return
	}
	period := s.cfg.SessionIdleTimeout / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.sweepDone:
			return
		case now := <-t.C:
			if n := s.sessions.sweep(now); n > 0 {
				s.logger.log(CodeOK, line{"event": "session_sweep", "sessions_closed": n})
			}
		}
	}
}

// Close cancels every session (aborting their in-flight queries), closes
// every cursor, and stops the sweeper. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.sweepDone)
		s.sessions.closeAll()
		s.cursorMu.Lock()
		for _, c := range s.cursors {
			c.close()
		}
		s.cursors = map[string]*cursor{}
		s.cursorMu.Unlock()
	})
}

// Handler returns the server's HTTP handler (bearer auth applied when
// configured).
func (s *Server) Handler() http.Handler {
	if s.cfg.AuthTokenSecret == "" {
		return s.mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" && r.Header.Get("Authorization") != "Bearer "+s.cfg.AuthTokenSecret {
			writeErrorLine(w, http.StatusUnauthorized, ErrCodeUnauthorized, "missing or invalid bearer token")
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/ingest/{table}", s.handleIngest)
	s.mux.HandleFunc("POST /v1/cursors", s.handleCursorCreate)
	s.mux.HandleFunc("POST /v1/cursors/{id}/next", s.handleCursorNext)
	s.mux.HandleFunc("POST /v1/cursors/{id}/rewind", s.handleCursorRewind)
	s.mux.HandleFunc("DELETE /v1/cursors/{id}", s.handleCursorDelete)
}

// writeErrorLine terminates a response with one CodeError JSONL line.
func writeErrorLine(w http.ResponseWriter, status int, errCode, msg string, extra ...line) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(status)
	l := line{"code": CodeError, "error": msg, "error_code": errCode}
	for _, e := range extra {
		for k, v := range e {
			l[k] = v
		}
	}
	_ = newLineWriter(w).write(l)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = newLineWriter(w).write(line{
		"code":      CodeOK,
		"status":    "healthy",
		"uptime_ms": durationMS(time.Since(s.started)),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	pcs := s.platform.PlanCacheStats()
	ds := s.platform.DurabilityStats()
	s.cursorMu.Lock()
	cursorsOpen := len(s.cursors)
	s.cursorMu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	// The durability fields are always present (zeros when memory-only)
	// so clients can pin the shape without probing the deployment mode.
	_ = newLineWriter(w).write(line{
		"code":                    CodeOK,
		"uptime_ms":               durationMS(time.Since(s.started)),
		"queries_total":           s.queriesTotal.Load(),
		"queries_canceled_total":  s.queriesCanceled.Load(),
		"queries_failed_total":    s.queriesFailed.Load(),
		"queries_rejected_total":  s.adm.rejected.Load(),
		"queries_admitted_total":  s.adm.admitted.Load(),
		"queries_inflight":        s.adm.inFlight(),
		"rows_streamed_total":     s.rowsStreamed.Load(),
		"ingest_rows_total":       s.ingestRows.Load(),
		"sessions_open":           s.sessions.count(),
		"cursors_open":            cursorsOpen,
		"plan_cache_hits_total":   pcs.Hits,
		"plan_cache_misses_total": pcs.Misses,
		"plan_cache_hit_rate":     pcs.HitRate(),
		"durability_enabled":      ds.Enabled,
		"wal_bytes_total":         ds.WALBytes,
		"checkpoints_total":       ds.Checkpoints,
		"checkpoint_epoch_ms":     ds.LastCheckpointUnixMilli,
		"snapshot_version":        ds.SnapshotVersion,
		"recovered_rows_total":    ds.RecoveredRows,
	})
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.create()
	s.logger.log(CodeOK, line{"event": "session_open", "session_id": sess.id})
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = newLineWriter(w).write(line{
		"code":                CodeOK,
		"session_id":          sess.id,
		"created_at_epoch_ms": sess.created.UnixMilli(),
		"idle_timeout_ms":     durationMS(s.cfg.SessionIdleTimeout),
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.closeSession(id) {
		writeErrorLine(w, http.StatusNotFound, ErrCodeNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	s.logger.log(CodeOK, line{"event": "session_close", "session_id": id})
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = newLineWriter(w).write(line{"code": CodeOK, "session_id": id, "closed": true})
}

// queryRequest is the body of POST /v1/query and POST /v1/cursors.
type queryRequest struct {
	SQL       string `json:"sql"`
	Args      []any  `json:"args"`
	SessionID string `json:"session_id"`
}

// requestCtx derives the execution context: the HTTP request context
// (cancelled when the client disconnects), additionally cancelled when the
// named session closes. The returned stop func releases the linkage.
func (s *Server) requestCtx(r *http.Request, sessionID string) (context.Context, context.CancelFunc, *session, error) {
	ctx, cancel := context.WithCancel(r.Context())
	if sessionID == "" {
		return ctx, cancel, nil, nil
	}
	sess, ok := s.sessions.get(sessionID)
	if !ok {
		cancel()
		return nil, nil, nil, fmt.Errorf("unknown session %q", sessionID)
	}
	unlink := context.AfterFunc(sess.ctx, cancel)
	return ctx, func() { unlink(); cancel() }, sess, nil
}

// execute runs one SQL text (with optional bound args) under ctx,
// behind admission control.
func (s *Server) execute(ctx context.Context, req queryRequest) (*sqlengine.Result, func(), error) {
	release, err := s.adm.acquire(ctx)
	if err != nil {
		return nil, nil, err
	}
	var res *sqlengine.Result
	if len(req.Args) > 0 {
		stmt, perr := s.platform.Prepare(req.SQL)
		if perr == nil {
			res, err = stmt.Exec(ctx, req.Args...)
		} else {
			err = perr
		}
	} else {
		res, err = s.platform.QueryCtx(ctx, req.SQL)
	}
	if err != nil {
		release()
		return nil, nil, err
	}
	return res, release, nil
}

// handleQuery streams a query's result as JSONL: one startup line with
// the column metadata, one progress line per batch carrying the rows and
// cumulative counters, and a terminal ok (or error) line. A client that
// disconnects mid-stream cancels the executor; the server logs a cancel
// event, not an error.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SQL == "" {
		writeErrorLine(w, http.StatusBadRequest, ErrCodeBadRequest, "body must be JSON with a non-empty \"sql\"")
		return
	}
	ctx, stop, _, err := s.requestCtx(r, req.SessionID)
	if err != nil {
		writeErrorLine(w, http.StatusNotFound, ErrCodeNotFound, err.Error())
		return
	}
	defer stop()

	s.queriesTotal.Add(1)
	res, release, err := s.execute(ctx, req)
	if err != nil {
		s.finishQueryError(w, r, req, start, err, 0)
		return
	}
	defer release()
	defer res.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	lw := newLineWriter(w)
	_ = lw.write(line{
		"code":           CodeStartup,
		"columns":        res.Columns(),
		"rows_total":     res.NumRows(),
		"batch_rows_max": sqlengine.BatchRows,
		"session_id":     req.SessionID,
	})
	sent, seq := 0, 0
	for b := res.Next(); b != nil; b = res.Next() {
		if ctx.Err() != nil {
			s.logCancel(req, start, sent)
			return
		}
		seq++
		sent += b.NumRows()
		err := lw.write(line{
			"code":        CodeProgress,
			"batch_seq":   seq,
			"batch_rows":  b.NumRows(),
			"rows_sent":   sent,
			"rows_total":  res.NumRows(),
			"duration_ms": durationMS(time.Since(start)),
			"rows":        batchRows(b),
		})
		if err != nil { // client went away mid-write
			s.logCancel(req, start, sent)
			return
		}
	}
	s.rowsStreamed.Add(int64(sent))
	_ = lw.write(line{
		"code":          CodeOK,
		"rows_total":    res.NumRows(),
		"batches_total": seq,
		"duration_ms":   durationMS(time.Since(start)),
	})
	s.logger.log(CodeOK, line{
		"event":       "query",
		"sql":         req.SQL,
		"rows_total":  res.NumRows(),
		"duration_ms": durationMS(time.Since(start)),
	})
}

// finishQueryError classifies an execution failure onto the wire and the
// log: backpressure → 429 typed error, cancellation → cancel log (the
// client is gone; nothing useful can be written), anything else → 400.
func (s *Server) finishQueryError(w http.ResponseWriter, r *http.Request, req queryRequest, start time.Time, err error, rowsSent int) {
	var bp *BackpressureError
	switch {
	case errors.As(err, &bp):
		writeErrorLine(w, http.StatusTooManyRequests, ErrCodeBackpressure, bp.Error(), line{
			"queue_wait_ms":          durationMS(bp.QueueWait),
			"max_concurrent_queries": bp.Limit,
		})
		s.logger.log(CodeError, line{
			"event":         "query_rejected",
			"error_code":    ErrCodeBackpressure,
			"sql":           req.SQL,
			"queue_wait_ms": durationMS(bp.QueueWait),
		})
	case errors.Is(err, context.Canceled) || r.Context().Err() != nil:
		s.logCancel(req, start, rowsSent)
	default:
		s.queriesFailed.Add(1)
		writeErrorLine(w, http.StatusBadRequest, ErrCodeQuery, err.Error(), line{
			"duration_ms": durationMS(time.Since(start)),
		})
		s.logger.log(CodeError, line{
			"event":      "query",
			"error_code": ErrCodeQuery,
			"sql":        req.SQL,
			"error":      err.Error(),
		})
	}
}

// logCancel records a query aborted by a dropped connection or closed
// session: a cancel event, not an error — the executor was asked to stop
// and did.
func (s *Server) logCancel(req queryRequest, start time.Time, rowsSent int) {
	s.queriesCanceled.Add(1)
	s.logger.log(CodeCancel, line{
		"event":       "query_canceled",
		"sql":         req.SQL,
		"rows_sent":   rowsSent,
		"duration_ms": durationMS(time.Since(start)),
	})
}

// handleIngest streams rows into one table: the request body is JSONL,
// one JSON array of cell values per line, batched into a published
// snapshot every IngestPublishRows rows (one progress line per publish)
// with a final publish and ok line. Rows become visible to queries only
// at publish points — a burst is one snapshot, not thousands.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	name := r.PathValue("table")
	ing, err := s.platform.Ingest(name)
	if err != nil {
		writeErrorLine(w, http.StatusNotFound, ErrCodeNotFound, err.Error())
		return
	}
	// Mid-ingest progress lines interleave response writes with request
	// body reads; HTTP/1.1 needs full-duplex opted in for that. When the
	// transport can't do it, progress lines are skipped and only the
	// terminal line (written after the body is fully consumed) is sent.
	fullDuplex := http.NewResponseController(w).EnableFullDuplex() == nil
	w.Header().Set("Content-Type", "application/x-ndjson")
	lw := newLineWriter(w)
	streamed := false
	appended, visible := 0, 0
	fail := func(msg string) {
		l := line{"code": CodeError, "error": msg, "error_code": ErrCodeBadRequest,
			"rows_appended_total": appended}
		if !streamed {
			w.WriteHeader(http.StatusBadRequest)
		}
		_ = lw.write(l)
	}
	dec := json.NewDecoder(r.Body)
	// On a durable platform Publish journals (and under the "always"
	// policy fsyncs) the chunk before it becomes visible; a log failure
	// keeps the rows staged and must surface as an internal error, not
	// be reported as appended-and-visible.
	walFail := func(err error) {
		l := line{"code": CodeError, "error": err.Error(), "error_code": ErrCodeInternal,
			"rows_appended_total": appended, "rows_visible_total": visible}
		if !streamed {
			w.WriteHeader(http.StatusInternalServerError)
		}
		_ = lw.write(l)
	}
	publish := func() error {
		if ing.Pending() == 0 {
			return nil
		}
		n, err := ing.PublishErr()
		if err != nil {
			return err
		}
		visible = n
		return nil
	}
	for {
		var cells []any
		if err := dec.Decode(&cells); err == io.EOF {
			break
		} else if err != nil {
			if perr := publish(); perr != nil { // rows already staged stay consistent: publish what we have
				walFail(perr)
				return
			}
			fail(fmt.Sprintf("ingest line %d: %v", appended+1, err))
			return
		}
		strs := make([]string, len(cells))
		for i, c := range cells {
			strs[i] = cellString(c)
		}
		if err := ing.Append(strs...); err != nil {
			if perr := publish(); perr != nil {
				walFail(perr)
				return
			}
			fail(err.Error())
			return
		}
		appended++
		if fullDuplex && appended%s.cfg.IngestPublishRows == 0 {
			if err := publish(); err != nil {
				walFail(err)
				return
			}
			streamed = true
			_ = lw.write(line{
				"code":                CodeProgress,
				"rows_appended_total": appended,
				"rows_visible_total":  visible,
				"duration_ms":         durationMS(time.Since(start)),
			})
		}
	}
	if err := publish(); err != nil {
		walFail(err)
		return
	}
	s.ingestRows.Add(int64(appended))
	_ = lw.write(line{
		"code":                CodeOK,
		"table":               name,
		"rows_appended_total": appended,
		"rows_visible_total":  visible,
		"duration_ms":         durationMS(time.Since(start)),
	})
	s.logger.log(CodeOK, line{
		"event":               "ingest",
		"table":               name,
		"rows_appended_total": appended,
		"duration_ms":         durationMS(time.Since(start)),
	})
}

// cellString renders one JSON ingest cell for type re-inference by the
// appender. JSON numbers arrive as float64; integral ones print without
// the decimal point so they infer back to ints.
func cellString(c any) string {
	switch v := c.(type) {
	case nil:
		return ""
	case string:
		return v
	case bool:
		return strconv.FormatBool(v)
	case float64:
		if v == float64(int64(v)) {
			return strconv.FormatInt(int64(v), 10)
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// handleCursorCreate executes a query (behind admission control, like
// /v1/query) but parks the Result in the cursor registry instead of
// streaming it, for paginated and rewindable reads. Session-scoped
// cursors die with their session.
func (s *Server) handleCursorCreate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SQL == "" {
		writeErrorLine(w, http.StatusBadRequest, ErrCodeBadRequest, "body must be JSON with a non-empty \"sql\"")
		return
	}
	ctx, stop, sess, err := s.requestCtx(r, req.SessionID)
	if err != nil {
		writeErrorLine(w, http.StatusNotFound, ErrCodeNotFound, err.Error())
		return
	}
	defer stop()
	s.queriesTotal.Add(1)
	res, release, err := s.execute(ctx, req)
	if err != nil {
		s.finishQueryError(w, r, req, start, err, 0)
		return
	}
	release() // execution is done; paging is cheap iteration, not admission-gated
	cur := newCursor(req.SQL, res)
	if sess != nil && !sess.addCursor(cur) {
		cur.close()
		writeErrorLine(w, http.StatusNotFound, ErrCodeClosed, "session closed during cursor creation")
		return
	}
	s.cursorMu.Lock()
	s.cursors[cur.id] = cur
	s.cursorMu.Unlock()
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = newLineWriter(w).write(line{
		"code":              CodeOK,
		"cursor_id":         cur.id,
		"columns":           res.Columns(),
		"rows_total":        res.NumRows(),
		"page_rows_default": s.cfg.PageRows,
		"session_id":        req.SessionID,
		"duration_ms":       durationMS(time.Since(start)),
	})
}

// lookupCursor fetches a registered cursor; closed cursors are evicted on
// access (their session died or they were explicitly deleted).
func (s *Server) lookupCursor(id string) (*cursor, bool) {
	s.cursorMu.Lock()
	defer s.cursorMu.Unlock()
	c, ok := s.cursors[id]
	if !ok {
		return nil, false
	}
	if _, _, closed := c.stats(); closed {
		delete(s.cursors, id)
		return nil, false
	}
	return c, true
}

func (s *Server) handleCursorNext(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	c, ok := s.lookupCursor(id)
	if !ok {
		writeErrorLine(w, http.StatusNotFound, ErrCodeNotFound, fmt.Sprintf("unknown or closed cursor %q", id))
		return
	}
	maxRows := s.cfg.PageRows
	if v := r.URL.Query().Get("max_rows"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErrorLine(w, http.StatusBadRequest, ErrCodeBadRequest, "max_rows must be a positive integer")
			return
		}
		maxRows = n
	}
	p, err := c.next(maxRows)
	if err != nil {
		writeErrorLine(w, http.StatusConflict, ErrCodeClosed, err.Error())
		return
	}
	_, total, _ := c.stats()
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = newLineWriter(w).write(line{
		"code":            CodeOK,
		"cursor_id":       id,
		"page_rows":       len(p.rows),
		"rows_sent_total": p.rowsSent,
		"rows_total":      total,
		"cursor_done":     p.done,
		"duration_ms":     durationMS(time.Since(start)),
		"rows":            p.rows,
	})
}

func (s *Server) handleCursorRewind(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c, ok := s.lookupCursor(id)
	if !ok {
		writeErrorLine(w, http.StatusNotFound, ErrCodeNotFound, fmt.Sprintf("unknown or closed cursor %q", id))
		return
	}
	if err := c.rewind(); err != nil {
		writeErrorLine(w, http.StatusConflict, ErrCodeClosed, err.Error())
		return
	}
	_, total, _ := c.stats()
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = newLineWriter(w).write(line{"code": CodeOK, "cursor_id": id, "rows_total": total, "rewound": true})
}

func (s *Server) handleCursorDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.cursorMu.Lock()
	c, ok := s.cursors[id]
	delete(s.cursors, id)
	s.cursorMu.Unlock()
	if !ok {
		writeErrorLine(w, http.StatusNotFound, ErrCodeNotFound, fmt.Sprintf("unknown cursor %q", id))
		return
	}
	c.close()
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = newLineWriter(w).write(line{"code": CodeOK, "cursor_id": id, "closed": true})
}
