package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// The wire format is the agent-first-data JSONL convention: every line is
// one JSON object carrying a `code` field naming its lifecycle phase, and
// every other field is suffix-named so the name is the schema —
// `duration_ms` is milliseconds, `rows_total` is a count, anything ending
// in `_secret` is sensitive and redacted before it leaves the process.
// Agent clients parse responses line by line with no external schema.
const (
	// CodeStartup opens a stream (and the server's own startup log line):
	// configuration, column metadata, identifiers.
	CodeStartup = "startup"
	// CodeProgress is one unit of streamed work: a batch of result rows or
	// an ingest publish, with cumulative counters.
	CodeProgress = "progress"
	// CodeOK terminates a successful stream with final totals.
	CodeOK = "ok"
	// CodeError terminates a failed stream with the error message and a
	// machine-readable error_code.
	CodeError = "error"
	// CodeCancel is a server-log-only code: the peer went away and the
	// query was cancelled mid-stream. It is deliberately distinct from
	// CodeError — a dropped connection is lifecycle, not failure.
	CodeCancel = "cancel"
)

// Typed error_code values carried on CodeError lines.
const (
	// ErrCodeBackpressure: admission control rejected the request — the
	// max-concurrent-query semaphore stayed full past the queue timeout.
	ErrCodeBackpressure = "backpressure"
	// ErrCodeBadRequest: the request body or parameters did not parse.
	ErrCodeBadRequest = "bad_request"
	// ErrCodeQuery: the SQL failed to plan or execute.
	ErrCodeQuery = "query_failed"
	// ErrCodeNotFound: unknown session, cursor, or table.
	ErrCodeNotFound = "not_found"
	// ErrCodeUnauthorized: missing or wrong bearer token.
	ErrCodeUnauthorized = "unauthorized"
	// ErrCodeClosed: the cursor or session was already closed.
	ErrCodeClosed = "closed"
	// ErrCodeInternal: a server-side invariant failed — e.g. the
	// write-ahead log rejected a publish, leaving the rows staged but
	// not visible.
	ErrCodeInternal = "internal"
)

// line is one JSONL wire line: code plus suffix-named fields.
type line map[string]any

// Redact returns v with every map value whose key ends in "_secret"
// (case-insensitive) replaced by "***", recursing through nested maps and
// slices. Non-container values pass through unchanged. The original is
// never mutated.
func Redact(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, val := range t {
			if strings.HasSuffix(strings.ToLower(k), "_secret") {
				out[k] = "***"
			} else {
				out[k] = Redact(val)
			}
		}
		return out
	case line:
		return Redact(map[string]any(t))
	case []any:
		out := make([]any, len(t))
		for i, val := range t {
			out[i] = Redact(val)
		}
		return out
	default:
		return v
	}
}

// durationMS renders a duration with the _ms suffix convention:
// millisecond float with microsecond precision.
func durationMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// lineWriter emits redacted JSONL lines to an HTTP response, flushing
// after each line so clients observe progress as it happens rather than
// when a buffer fills.
type lineWriter struct {
	w     io.Writer
	flush func()
	enc   *json.Encoder
}

func newLineWriter(w http.ResponseWriter) *lineWriter {
	lw := &lineWriter{w: w, flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		lw.flush = f.Flush
	}
	lw.enc = json.NewEncoder(w)
	return lw
}

// write marshals one line (secrets redacted) followed by '\n' and flushes.
func (lw *lineWriter) write(l line) error {
	if err := lw.enc.Encode(Redact(l)); err != nil {
		return err
	}
	lw.flush()
	return nil
}

// jsonLogger serializes redacted JSONL log lines to one writer — the
// server's operational log (startup, per-request ok/cancel/error events).
type jsonLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newJSONLogger(w io.Writer) *jsonLogger {
	if w == nil {
		w = io.Discard
	}
	return &jsonLogger{w: w}
}

func (l *jsonLogger) log(code string, fields line) {
	out := line{"code": code}
	for k, v := range fields {
		out[k] = v
	}
	data, err := json.Marshal(Redact(out))
	if err != nil {
		data = []byte(fmt.Sprintf(`{"code":"error","error":"log marshal: %s"}`, err))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(append(data, '\n'))
}
