package server

import (
	"strconv"

	"datalab"
)

// DemoColumns is the schema of the built-in demo dataset: an `events`
// table shaped like the engine benchmarks, big enough that a full scan
// streams many batches.
var DemoColumns = []string{"id", "kind", "value"}

// demoKinds cycles through the demo event kinds.
var demoKinds = []string{"view", "click", "buy"}

// DemoRecords generates n demo event rows as string records (the
// LoadRecords/AppendRecords shape). Values are deterministic: id counts
// up from base, kind cycles, value is a pseudo-scattered two-decimal
// float — the same distribution cmd/datalab-bench uses.
func DemoRecords(base, n int) [][]string {
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		id := base + i
		rows[i] = []string{
			strconv.Itoa(id),
			demoKinds[id%len(demoKinds)],
			strconv.FormatFloat(float64((id*7919)%10000)/100, 'f', 2, 64),
		}
	}
	return rows
}

// LoadDemo registers the demo `events` table with n rows on the platform.
func LoadDemo(p *datalab.Platform, n int) error {
	return p.LoadRecords("events", DemoColumns, DemoRecords(0, n))
}
