package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// BackpressureError is the typed rejection admission control hands back
// when the max-concurrent-query semaphore stays full past the queue
// timeout. It maps to HTTP 429 and a CodeError line with
// error_code=backpressure, so clients can distinguish "slow down and
// retry" from a real failure.
type BackpressureError struct {
	Limit     int           // the semaphore capacity that was saturated
	QueueWait time.Duration // how long the request queued before giving up
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("server: admission queue timed out after %v (%d queries already executing)", e.QueueWait, e.Limit)
}

// admission is the server's max-concurrent-query gate, layered over the
// engine's GOMAXPROCS-bounded worker pool: the pool bounds how much CPU a
// query fans out to, the semaphore bounds how many queries contend for it
// at all. A request waits up to queueTimeout for a slot, then is rejected
// with a BackpressureError; a cancelled request leaves the queue
// immediately.
type admission struct {
	sem          chan struct{}
	queueTimeout time.Duration

	admitted atomic.Int64
	rejected atomic.Int64
}

func newAdmission(maxConcurrent int, queueTimeout time.Duration) *admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	return &admission{sem: make(chan struct{}, maxConcurrent), queueTimeout: queueTimeout}
}

// acquire blocks until a slot frees, the queue timeout elapses, or ctx is
// cancelled. On success it returns a release function that must be called
// exactly once (it is safe under defer alongside an explicit early call —
// release is idempotent).
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.sem <- struct{}{}: // fast path: a slot is free right now
	default:
		t := time.NewTimer(a.queueTimeout)
		defer t.Stop()
		start := time.Now()
		select {
		case a.sem <- struct{}{}:
		case <-t.C:
			a.rejected.Add(1)
			return nil, &BackpressureError{Limit: cap(a.sem), QueueWait: time.Since(start)}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	a.admitted.Add(1)
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			<-a.sem
		}
	}, nil
}

// inFlight reports how many admitted queries currently hold a slot.
func (a *admission) inFlight() int { return len(a.sem) }
