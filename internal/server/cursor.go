package server

import (
	"errors"
	"sync"
	"time"

	"datalab/internal/sqlengine"
	"datalab/internal/table"
)

// errCursorClosed is the registry-level closed condition; it wraps the
// engine's ErrResultClosed contract (Result.Next after Close is defined
// to yield nothing) into an explicit error for the wire.
var errCursorClosed = errors.New("server: cursor is closed")

// cursor is a server-side cursor: a named, pageable handle over one
// executed Result. Result is a single-consumer iterator, so every access
// serializes on the cursor mutex; paginated re-reads are served by
// Result.Rewind — results are always rewindable (lazy ones view a pinned
// immutable snapshot, materialized ones own their storage), which is the
// design answer to "Result is single-consumer": share by rewinding one
// handle, never by concurrent iteration.
type cursor struct {
	id      string
	sql     string
	created time.Time

	mu       sync.Mutex
	res      *sqlengine.Result
	rowsSent int // rows emitted since creation or last rewind
	closed   bool
}

func newCursor(sql string, res *sqlengine.Result) *cursor {
	return &cursor{id: newID(), sql: sql, created: time.Now(), res: res}
}

// page is one cursor read: up to maxRows rows (rounded up to whole result
// batches), plus position bookkeeping for the wire.
type page struct {
	rows     [][]any
	rowsSent int  // cumulative rows emitted including this page
	done     bool // the cursor is exhausted after this page
}

// next returns the next page of up to maxRows rows. Pages are composed of
// whole Result batches (≤1024 rows each), so a page may overshoot maxRows
// by at most one batch. maxRows <= 0 means one batch.
func (c *cursor) next(maxRows int) (*page, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errCursorClosed
	}
	p := &page{}
	for {
		b := c.res.Next()
		if b == nil {
			p.done = true
			break
		}
		p.rows = append(p.rows, batchRows(b)...)
		c.rowsSent += b.NumRows()
		if len(p.rows) >= maxRows || maxRows <= 0 {
			p.done = c.rowsSent >= c.res.NumRows()
			break
		}
	}
	p.rowsSent = c.rowsSent
	return p, nil
}

// rewind moves the cursor back to the first row for a paginated re-read.
func (c *cursor) rewind() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errCursorClosed
	}
	if err := c.res.Rewind(); err != nil {
		return err
	}
	c.rowsSent = 0
	return nil
}

// close releases the underlying Result (un-pinning its snapshot).
// Idempotent.
func (c *cursor) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	_ = c.res.Close()
}

// stats returns the cursor's position under its lock.
func (c *cursor) stats() (rowsSent, rowsTotal int, closed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rowsSent, c.res.NumRows(), c.closed
}

// batchRows encodes one Result batch as wire rows: JSON-native cell
// values with NULL as null, ints and floats as numbers, bools as booleans
// and everything else as strings.
func batchRows(b *sqlengine.Batch) [][]any {
	rows := make([][]any, b.NumRows())
	ncols := b.NumCols()
	for i := range rows {
		row := make([]any, ncols)
		for j := 0; j < ncols; j++ {
			row[j] = wireValue(b.Value(j, i))
		}
		rows[i] = row
	}
	return rows
}

// wireValue maps one table.Value onto its JSON-native representation.
func wireValue(v table.Value) any {
	if v.IsNull() {
		return nil
	}
	switch v.Kind {
	case table.KindInt:
		if i, ok := v.AsInt(); ok {
			return i
		}
	case table.KindFloat:
		if f, ok := v.AsFloat(); ok {
			return f
		}
	case table.KindBool:
		if b, ok := v.AsBool(); ok {
			return b
		}
	}
	return v.AsString()
}
