package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"datalab"
)

// syncBuffer is a mutex-guarded log sink: handler goroutines write while
// the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newTestServer builds a server over a demo platform, capturing its JSONL
// log, and registers cleanup.
func newTestServer(t *testing.T, rows int, cfg Config) (*Server, *httptest.Server, *syncBuffer) {
	t.Helper()
	p := datalab.MustNew()
	if err := LoadDemo(p, rows); err != nil {
		t.Fatal(err)
	}
	logBuf := &syncBuffer{}
	srv := New(p, cfg, logBuf)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, logBuf
}

// knownCodes is the complete wire vocabulary; every line anywhere must
// carry one of these.
var knownCodes = map[string]bool{
	CodeStartup: true, CodeProgress: true, CodeOK: true, CodeError: true, CodeCancel: true,
}

// decodeLines parses a JSONL body, failing the test on any malformed line
// or unknown code, and asserting no *_secret field anywhere survives
// unredacted.
func decodeLines(t *testing.T, body io.Reader) []map[string]any {
	t.Helper()
	var lines []map[string]any
	dec := json.NewDecoder(body)
	for {
		var l map[string]any
		if err := dec.Decode(&l); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("malformed JSONL line %d: %v", len(lines)+1, err)
		}
		code, _ := l["code"].(string)
		if !knownCodes[code] {
			t.Fatalf("line %d: unknown code %q in %v", len(lines)+1, code, l)
		}
		assertRedacted(t, l)
		lines = append(lines, l)
	}
	if len(lines) == 0 {
		t.Fatal("response carried no JSONL lines")
	}
	return lines
}

// assertRedacted walks a decoded line and fails on any *_secret field
// whose value is not the redaction marker.
func assertRedacted(t *testing.T, v any) {
	t.Helper()
	switch m := v.(type) {
	case map[string]any:
		for k, val := range m {
			if strings.HasSuffix(strings.ToLower(k), "_secret") {
				if s, _ := val.(string); s != "***" && val != nil {
					t.Fatalf("unredacted secret field %q = %v", k, val)
				}
			}
			assertRedacted(t, val)
		}
	case []any:
		for _, val := range m {
			assertRedacted(t, val)
		}
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestQueryStreamsValidatedJSONL drives the primary endpoint: a multi-
// batch query must arrive as startup + N progress + ok, with consistent
// suffix-named counters and the right row payloads.
func TestQueryStreamsValidatedJSONL(t *testing.T) {
	const rows = 5000
	_, ts, _ := newTestServer(t, rows, Config{})
	resp := postJSON(t, ts.URL+"/v1/query", map[string]any{"sql": "SELECT id, kind, value FROM events"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	if got := lines[0]["code"]; got != CodeStartup {
		t.Fatalf("first line code = %v, want startup", got)
	}
	if got := lines[0]["rows_total"]; got != float64(rows) {
		t.Fatalf("startup rows_total = %v, want %d", got, rows)
	}
	cols, _ := lines[0]["columns"].([]any)
	if len(cols) != 3 {
		t.Fatalf("startup columns = %v", lines[0]["columns"])
	}
	last := lines[len(lines)-1]
	if last["code"] != CodeOK {
		t.Fatalf("terminal code = %v, want ok", last["code"])
	}
	if _, ok := last["duration_ms"].(float64); !ok {
		t.Fatalf("terminal line missing duration_ms: %v", last)
	}
	seen := 0
	for _, l := range lines[1 : len(lines)-1] {
		if l["code"] != CodeProgress {
			t.Fatalf("middle line code = %v, want progress", l["code"])
		}
		batchRows := int(l["batch_rows"].(float64))
		rowsArr, _ := l["rows"].([]any)
		if len(rowsArr) != batchRows {
			t.Fatalf("progress batch_rows=%d but %d rows attached", batchRows, len(rowsArr))
		}
		seen += batchRows
		if int(l["rows_sent"].(float64)) != seen {
			t.Fatalf("rows_sent = %v, want %d", l["rows_sent"], seen)
		}
		if _, ok := l["duration_ms"].(float64); !ok {
			t.Fatalf("progress line missing duration_ms")
		}
	}
	if seen != rows {
		t.Fatalf("streamed %d rows, want %d", seen, rows)
	}
	// Spot-check a cell payload: row 0 is [0, "view", 0].
	firstRow := lines[1]["rows"].([]any)[0].([]any)
	if firstRow[0] != float64(0) || firstRow[1] != "view" {
		t.Fatalf("row 0 = %v", firstRow)
	}
}

// TestQueryWithBoundArgs exercises the Prepare/Exec path over the wire.
func TestQueryWithBoundArgs(t *testing.T) {
	_, ts, _ := newTestServer(t, 1000, Config{})
	resp := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"sql":  "SELECT COUNT(*) AS n FROM events WHERE id < ? AND kind = ?",
		"args": []any{500, "view"},
	})
	defer resp.Body.Close()
	lines := decodeLines(t, resp.Body)
	row := lines[1]["rows"].([]any)[0].([]any)
	n := int(row[0].(float64))
	want := 0
	for i := 0; i < 500; i++ {
		if i%3 == 0 {
			want++
		}
	}
	if n != want {
		t.Fatalf("bound COUNT = %d, want %d", n, want)
	}
}

// TestQueryErrorLine pins the failure shape: HTTP 400 with one error line
// carrying error_code=query_failed.
func TestQueryErrorLine(t *testing.T) {
	_, ts, _ := newTestServer(t, 10, Config{})
	resp := postJSON(t, ts.URL+"/v1/query", map[string]any{"sql": "SELECT nope FROM missing"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	if lines[0]["code"] != CodeError || lines[0]["error_code"] != ErrCodeQuery {
		t.Fatalf("error line = %v", lines[0])
	}
}

// TestIngestThenQuery streams JSONL rows in and verifies they are visible
// (and only publish-batch granular) to queries.
func TestIngestThenQuery(t *testing.T) {
	const base, extra = 100, 2500
	_, ts, _ := newTestServer(t, base, Config{IngestPublishRows: 1000})
	var body bytes.Buffer
	for _, r := range DemoRecords(base, extra) {
		body.WriteString(fmt.Sprintf("[%s, %q, %s]\n", r[0], r[1], r[2]))
	}
	resp, err := http.Post(ts.URL+"/v1/ingest/events", "application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := decodeLines(t, resp.Body)
	last := lines[len(lines)-1]
	if last["code"] != CodeOK || int(last["rows_appended_total"].(float64)) != extra {
		t.Fatalf("ingest terminal line = %v", last)
	}
	if got := int(last["rows_visible_total"].(float64)); got != base+extra {
		t.Fatalf("rows_visible_total = %d, want %d", got, base+extra)
	}
	// Two publishes at 1000-row boundaries → two progress lines.
	progress := 0
	for _, l := range lines {
		if l["code"] == CodeProgress {
			progress++
		}
	}
	if progress != extra/1000 {
		t.Fatalf("progress lines = %d, want %d", progress, extra/1000)
	}
	resp2 := postJSON(t, ts.URL+"/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM events"})
	defer resp2.Body.Close()
	qlines := decodeLines(t, resp2.Body)
	row := qlines[1]["rows"].([]any)[0].([]any)
	if int(row[0].(float64)) != base+extra {
		t.Fatalf("post-ingest COUNT = %v, want %d", row[0], base+extra)
	}
}

// TestIngestUnknownTable pins the typed not_found error.
func TestIngestUnknownTable(t *testing.T) {
	_, ts, _ := newTestServer(t, 10, Config{})
	resp, err := http.Post(ts.URL+"/v1/ingest/nosuch", "application/x-ndjson", strings.NewReader("[1]\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	lines := decodeLines(t, resp.Body)
	if lines[0]["error_code"] != ErrCodeNotFound {
		t.Fatalf("error line = %v", lines[0])
	}
}

// TestCursorPaginationAndRewind drives the server-side cursor lifecycle:
// create, page to exhaustion, rewind, re-read identically, delete, and
// observe the defined closed error afterward.
func TestCursorPaginationAndRewind(t *testing.T) {
	const rows = 3000
	_, ts, _ := newTestServer(t, rows, Config{PageRows: 1024})
	resp := postJSON(t, ts.URL+"/v1/cursors", map[string]any{"sql": "SELECT id FROM events"})
	defer resp.Body.Close()
	created := decodeLines(t, resp.Body)[0]
	if created["code"] != CodeOK {
		t.Fatalf("create = %v", created)
	}
	id := created["cursor_id"].(string)
	if int(created["rows_total"].(float64)) != rows {
		t.Fatalf("rows_total = %v", created["rows_total"])
	}

	readAll := func() []float64 {
		var got []float64
		for {
			r := postJSON(t, ts.URL+"/v1/cursors/"+id+"/next?max_rows=1000", nil)
			l := decodeLines(t, r.Body)[0]
			r.Body.Close()
			if l["code"] != CodeOK {
				t.Fatalf("next = %v", l)
			}
			for _, row := range l["rows"].([]any) {
				got = append(got, row.([]any)[0].(float64))
			}
			if l["cursor_done"].(bool) {
				return got
			}
		}
	}
	first := readAll()
	if len(first) != rows {
		t.Fatalf("paged %d rows, want %d", len(first), rows)
	}
	// Exhausted cursor: another next returns an empty done page, not junk.
	r := postJSON(t, ts.URL+"/v1/cursors/"+id+"/next", nil)
	l := decodeLines(t, r.Body)[0]
	r.Body.Close()
	if !l["cursor_done"].(bool) || l["rows"] != nil && len(l["rows"].([]any)) != 0 {
		t.Fatalf("post-exhaustion page = %v", l)
	}
	// Rewind → identical second read.
	r = postJSON(t, ts.URL+"/v1/cursors/"+id+"/rewind", nil)
	if got := decodeLines(t, r.Body)[0]; got["rewound"] != true {
		t.Fatalf("rewind = %v", got)
	}
	r.Body.Close()
	second := readAll()
	if len(second) != rows {
		t.Fatalf("re-read %d rows, want %d", len(second), rows)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("row %d diverged after rewind: %v vs %v", i, first[i], second[i])
		}
	}
	// Delete, then every access is a defined error.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/cursors/"+id, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	r = postJSON(t, ts.URL+"/v1/cursors/"+id+"/next", nil)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("next after delete status = %d", r.StatusCode)
	}
	r.Body.Close()
}

// TestSessionScopedCancellation pins the multi-session contract: closing
// a session cancels its in-flight query (observed as a cancel log event,
// not an error) and closes its cursors.
func TestSessionScopedCancellation(t *testing.T) {
	srv, ts, logBuf := newTestServer(t, 200_000, Config{})
	resp := postJSON(t, ts.URL+"/v1/sessions", nil)
	sess := decodeLines(t, resp.Body)[0]["session_id"].(string)
	resp.Body.Close()

	// Park a cursor on the session.
	resp = postJSON(t, ts.URL+"/v1/cursors", map[string]any{"sql": "SELECT id FROM events", "session_id": sess})
	cur := decodeLines(t, resp.Body)[0]["cursor_id"].(string)
	resp.Body.Close()

	// Start a heavy session-scoped query, then close the session while it
	// streams.
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		body, _ := json.Marshal(map[string]any{
			"sql":        "SELECT id, kind, value FROM events ORDER BY value, id",
			"session_id": sess,
		})
		r, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			close(started)
			finished <- err
			return
		}
		defer r.Body.Close()
		buf := make([]byte, 1)
		_, _ = r.Body.Read(buf) // first byte: the stream is live
		close(started)
		_, err = io.Copy(io.Discard, r.Body)
		finished <- err
	}()
	<-started
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sess, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	<-finished // stream ended (truncated or complete — the race is real)

	// The session's cursor died with it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r := postJSON(t, ts.URL+"/v1/cursors/"+cur+"/next", nil)
		status := r.StatusCode
		r.Body.Close()
		if status == http.StatusNotFound || status == http.StatusConflict {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cursor still alive after session close (status %d)", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = srv
	// The log must carry session_close; a canceled query logs cancel, not
	// error (when the query outpaced the close, there is an ok instead —
	// but never an error).
	logs := logBuf.String()
	if !strings.Contains(logs, `"event":"session_close"`) {
		t.Fatalf("no session_close event in log:\n%s", logs)
	}
	if strings.Contains(logs, `"error_code":"query_failed"`) {
		t.Fatalf("session cancellation logged as query failure:\n%s", logs)
	}
}

// TestClientDisconnectCancelsAndLogsCancel is the mid-stream-disconnect
// contract: the server observes the dropped connection, aborts the
// executor, increments queries_canceled_total, and logs a cancel line —
// never an error line.
func TestClientDisconnectCancelsAndLogsCancel(t *testing.T) {
	srv, ts, logBuf := newTestServer(t, 300_000, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(map[string]any{"sql": "SELECT id, kind, value FROM events"})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one chunk so the stream is known to be flowing, then hang up.
	buf := make([]byte, 4096)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.queriesCanceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("queries_canceled_total never incremented after disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, `"code":"cancel"`) || !strings.Contains(logs, `"event":"query_canceled"`) {
		t.Fatalf("no cancel event in log:\n%s", logs)
	}
	if strings.Contains(logs, `"event":"query","error_code"`) {
		t.Fatalf("disconnect logged as query error:\n%s", logs)
	}
}

// TestAuthAndStartupRedaction: with a bearer token configured, /healthz
// stays open, everything else requires the token, and the startup log
// line redacts the secret.
func TestAuthAndStartupRedaction(t *testing.T) {
	const token = "hunter2-very-secret"
	_, ts, logBuf := newTestServer(t, 10, Config{AuthTokenSecret: token})
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz without token = %d", r.StatusCode)
	}
	r.Body.Close()
	r, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusUnauthorized {
		t.Fatalf("stats without token = %d, want 401", r.StatusCode)
	}
	lines := decodeLines(t, r.Body)
	r.Body.Close()
	if lines[0]["error_code"] != ErrCodeUnauthorized {
		t.Fatalf("unauthorized line = %v", lines[0])
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("stats with token = %d", r.StatusCode)
	}
	r.Body.Close()
	logs := logBuf.String()
	if strings.Contains(logs, token) {
		t.Fatalf("startup log leaked the auth token:\n%s", logs)
	}
	if !strings.Contains(logs, `"auth_token_secret":"***"`) {
		t.Fatalf("startup log missing redacted secret field:\n%s", logs)
	}
}

// TestStatsShape validates /v1/stats carries the suffix-named counters
// the smoke client and dashboards key on.
func TestStatsShape(t *testing.T) {
	_, ts, _ := newTestServer(t, 100, Config{})
	resp := postJSON(t, ts.URL+"/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM events"})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	st := decodeLines(t, r.Body)[0]
	for _, k := range []string{
		"uptime_ms", "queries_total", "queries_canceled_total", "queries_rejected_total",
		"rows_streamed_total", "ingest_rows_total", "sessions_open", "cursors_open",
		"plan_cache_hits_total", "plan_cache_hit_rate",
		"durability_enabled", "wal_bytes_total", "checkpoints_total",
		"checkpoint_epoch_ms", "snapshot_version", "recovered_rows_total",
	} {
		if _, ok := st[k]; !ok {
			t.Fatalf("stats missing %q: %v", k, st)
		}
	}
	if st["queries_total"].(float64) < 1 {
		t.Fatalf("queries_total = %v", st["queries_total"])
	}
	// Memory-only server: durability fields present but zeroed.
	if st["durability_enabled"] != false || st["wal_bytes_total"].(float64) != 0 {
		t.Fatalf("memory-only durability stats: enabled=%v wal_bytes=%v",
			st["durability_enabled"], st["wal_bytes_total"])
	}
}

// TestDurableServerRestart runs the crash-recovery loop in-process: a
// durable server ingests over HTTP, is torn down without any graceful
// catalog handoff, and a second server over the same data directory must
// serve byte-identical query results with matching snapshot_version.
func TestDurableServerRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() (*datalab.Platform, *httptest.Server, *Server) {
		p, err := datalab.OpenDurable(dir, datalab.DurabilityOptions{})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(p, Config{}, io.Discard)
		ts := httptest.NewServer(srv.Handler())
		return p, ts, srv
	}

	p1, ts1, srv1 := open()
	if err := LoadDemo(p1, 500); err != nil {
		t.Fatal(err)
	}
	body := &bytes.Buffer{}
	for i := 0; i < 300; i++ {
		fmt.Fprintf(body, "[%d, \"extra\", %g]\n", 100000+i, float64(i))
	}
	resp, err := http.Post(ts1.URL+"/v1/ingest/events", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	lines := decodeLines(t, resp.Body)
	resp.Body.Close()
	if last := lines[len(lines)-1]; last["code"] != CodeOK || last["rows_appended_total"].(float64) != 300 {
		t.Fatalf("ingest terminal line: %v", last)
	}

	const probe = "SELECT kind, COUNT(*), SUM(value) FROM events GROUP BY kind ORDER BY kind"
	// queryBody canonicalizes the response stream: every line, in order,
	// with only the timing fields dropped — so data, row order, batch
	// structure, and codes must all match across the restart.
	queryBody := func(ts *httptest.Server) string {
		r := postJSON(t, ts.URL+"/v1/query", map[string]any{"sql": probe})
		defer r.Body.Close()
		var out []byte
		for _, l := range decodeLines(t, r.Body) {
			delete(l, "duration_ms")
			b, err := json.Marshal(l)
			if err != nil {
				t.Fatal(err)
			}
			out = append(append(out, b...), '\n')
		}
		return string(out)
	}
	statsLine := func(ts *httptest.Server) map[string]any {
		r, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		return decodeLines(t, r.Body)[0]
	}

	want := queryBody(ts1)
	st1 := statsLine(ts1)
	if st1["durability_enabled"] != true || st1["wal_bytes_total"].(float64) == 0 {
		t.Fatalf("durable server stats: %v", st1)
	}
	// Tear down abruptly: no checkpoint, no graceful catalog handoff —
	// recovery must come from the log alone.
	ts1.Close()
	srv1.Close()
	if err := p1.Close(); err != nil {
		t.Fatal(err)
	}

	p2, ts2, srv2 := open()
	defer func() { ts2.Close(); srv2.Close(); p2.Close() }()
	if got := queryBody(ts2); got != want {
		t.Fatalf("recovered query diverged:\nwant %s\ngot  %s", want, got)
	}
	st2 := statsLine(ts2)
	if st2["snapshot_version"] != st1["snapshot_version"] {
		t.Fatalf("snapshot_version %v -> %v across restart", st1["snapshot_version"], st2["snapshot_version"])
	}
	if st2["recovered_rows_total"].(float64) != 800 {
		t.Fatalf("recovered_rows_total = %v, want 800", st2["recovered_rows_total"])
	}
}

// TestRedact unit-tests the secret scrubber on nested shapes.
func TestRedact(t *testing.T) {
	in := map[string]any{
		"api_key_secret": "sk-123",
		"nested":         map[string]any{"db_password_secret": "pw", "timeout_s": 30},
		"list":           []any{map[string]any{"token_secret": "t"}},
		"plain":          "ok",
	}
	out := Redact(in).(map[string]any)
	if out["api_key_secret"] != "***" {
		t.Fatalf("top-level secret survived: %v", out)
	}
	if out["nested"].(map[string]any)["db_password_secret"] != "***" {
		t.Fatal("nested secret survived")
	}
	if out["list"].([]any)[0].(map[string]any)["token_secret"] != "***" {
		t.Fatal("secret inside list survived")
	}
	if out["plain"] != "ok" || in["api_key_secret"] != "sk-123" {
		t.Fatal("Redact mutated non-secret data or its input")
	}
}
