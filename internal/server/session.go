package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// newID returns a 16-hex-char random identifier for sessions and cursors.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// session is one client's context over the shared catalog: queries issued
// with its id execute under a context that dies with the session, and its
// server-side cursors are tracked so closing the session (or idling past
// the TTL) releases every Result pin at once. The catalog itself is
// shared — sessions scope lifetime and cancellation, not data.
type session struct {
	id      string
	created time.Time
	ctx     context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	cursors  map[string]*cursor
	lastUsed time.Time
	closed   bool
}

// touch marks the session recently used for idle-TTL accounting.
func (s *session) touch() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

// addCursor registers a cursor with the session; it fails once the
// session has been closed (the cursor must not outlive the session).
func (s *session) addCursor(c *cursor) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.cursors[c.id] = c
	return true
}

func (s *session) removeCursor(id string) {
	s.mu.Lock()
	delete(s.cursors, id)
	s.mu.Unlock()
}

// close cancels the session context (aborting in-flight queries issued
// under it) and closes every registered cursor. Idempotent.
func (s *session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	cursors := make([]*cursor, 0, len(s.cursors))
	for _, c := range s.cursors {
		cursors = append(cursors, c)
	}
	s.cursors = map[string]*cursor{}
	s.mu.Unlock()
	s.cancel()
	for _, c := range cursors {
		c.close()
	}
}

// sessionRegistry tracks live sessions and sweeps the ones idle past the
// TTL. All sessions descend from one base context so server shutdown
// cancels everything in flight with a single call.
type sessionRegistry struct {
	base    context.Context
	stop    context.CancelFunc
	idleTTL time.Duration

	mu   sync.Mutex
	byID map[string]*session
}

func newSessionRegistry(idleTTL time.Duration) *sessionRegistry {
	base, stop := context.WithCancel(context.Background())
	return &sessionRegistry{base: base, stop: stop, idleTTL: idleTTL, byID: map[string]*session{}}
}

func (r *sessionRegistry) create() *session {
	ctx, cancel := context.WithCancel(r.base)
	s := &session{
		id:       newID(),
		created:  time.Now(),
		ctx:      ctx,
		cancel:   cancel,
		cursors:  map[string]*cursor{},
		lastUsed: time.Now(),
	}
	r.mu.Lock()
	r.byID[s.id] = s
	r.mu.Unlock()
	return s
}

func (r *sessionRegistry) get(id string) (*session, bool) {
	r.mu.Lock()
	s, ok := r.byID[id]
	r.mu.Unlock()
	if ok {
		s.touch()
	}
	return s, ok
}

// closeSession closes and removes one session; reports whether it existed.
func (r *sessionRegistry) closeSession(id string) bool {
	r.mu.Lock()
	s, ok := r.byID[id]
	delete(r.byID, id)
	r.mu.Unlock()
	if ok {
		s.close()
	}
	return ok
}

func (r *sessionRegistry) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// sweep closes every session idle past the TTL and returns how many fell.
func (r *sessionRegistry) sweep(now time.Time) int {
	if r.idleTTL <= 0 {
		return 0
	}
	var stale []*session
	r.mu.Lock()
	for id, s := range r.byID {
		s.mu.Lock()
		idle := now.Sub(s.lastUsed)
		s.mu.Unlock()
		if idle > r.idleTTL {
			stale = append(stale, s)
			delete(r.byID, id)
		}
	}
	r.mu.Unlock()
	for _, s := range stale {
		s.close()
	}
	return len(stale)
}

// closeAll cancels the base context (killing every session-scoped query)
// and closes every session. Used at server shutdown.
func (r *sessionRegistry) closeAll() {
	r.stop()
	r.mu.Lock()
	sessions := make([]*session, 0, len(r.byID))
	for _, s := range r.byID {
		sessions = append(sessions, s)
	}
	r.byID = map[string]*session{}
	r.mu.Unlock()
	for _, s := range sessions {
		s.close()
	}
}
