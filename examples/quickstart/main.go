// Quickstart: load a CSV, ask a natural-language question, get SQL, a
// result table, and a chart back — the minimal DataLab loop.
package main

import (
	"fmt"
	"log"
	"strings"

	"datalab"
)

const salesCSV = `region,product,revenue,sale_date
east,widget,100.5,2024-01-05
east,gadget,250.0,2024-02-03
west,widget,80.25,2024-03-10
west,gadget,300.0,2024-04-21
north,widget,120.0,2024-05-11
north,gadget,900.0,2024-06-18
south,widget,75.0,2024-07-02
south,gadget,410.0,2024-08-19
`

func main() {
	p := datalab.MustNew(datalab.WithSeed("quickstart"))
	if err := p.LoadCSV("sales", strings.NewReader(salesCSV)); err != nil {
		log.Fatal(err)
	}

	ans, err := p.Ask("draw a bar chart of total revenue by region", "sales")
	if err != nil {
		log.Fatal(err)
	}
	if ans.Err != nil {
		log.Fatal("generated SQL failed: ", ans.Err)
	}

	fmt.Println("agents involved:", strings.Join(ans.AgentTrace, " -> "))
	fmt.Println("\ngenerated SQL:")
	fmt.Println(" ", ans.SQL)

	// The typed result API: iterate columnar batches with typed accessors
	// instead of materializing strings.
	fmt.Println("\nresult (typed batches):")
	fmt.Println(" ", strings.Join(ans.Result.Columns(), " | "))
	var total float64
	for b := ans.Result.Next(); b != nil; b = ans.Result.Next() {
		for i := 0; i < b.NumRows(); i++ {
			v, _ := b.Float64(1, i)
			fmt.Printf("  %s | %.2f\n", b.String(0, i), v)
			total += v
		}
	}
	fmt.Printf("  (total across regions: %.2f)\n", total)

	fmt.Println("\nchart specification:")
	fmt.Println(ans.ChartJSON)

	prompt, completion, calls := p.TokenUsage()
	fmt.Printf("\ntoken usage: %d prompt + %d completion over %d calls\n", prompt, completion, calls)
}
