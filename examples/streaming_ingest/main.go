// Streaming ingest: appending to a live table while queries run. Shows
// the three guarantees of the snapshot storage: staged rows are invisible
// until Publish, a publish is one atomic snapshot swap visible to the
// next query, and a Result opened earlier keeps reading the snapshot it
// started on — no reader ever blocks on ingest.
package main

import (
	"context"
	"fmt"
	"log"

	"datalab"
)

func main() {
	p := datalab.MustNew(datalab.WithSeed("streaming-ingest"))

	// Seed a small orders table.
	columns := []string{"id", "region", "amount"}
	var rows [][]string
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < 1000; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			regions[i%len(regions)],
			fmt.Sprintf("%d", (i*13)%500),
		})
	}
	if err := p.LoadRecords("orders", columns, rows); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	count := func() int64 {
		res, err := p.QueryCtx(ctx, "SELECT COUNT(*) FROM orders")
		if err != nil {
			log.Fatal(err)
		}
		n, _ := res.Next().Int64(0, 0)
		return n
	}

	// 1. Open a cursor BEFORE any ingest: it pins today's snapshot.
	pinned, err := p.QueryCtx(ctx, "SELECT id FROM orders")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Stream new orders in. Appends stage invisibly; Publish makes
	// the whole batch visible in one atomic snapshot swap.
	in, err := p.Ingest("orders")
	if err != nil {
		log.Fatal(err)
	}
	for i := 1000; i < 1500; i++ {
		if err := in.Append(fmt.Sprintf("%d", i), regions[i%len(regions)], "250"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("staged %d rows; queries still see %d\n", in.Pending(), count())
	visible := in.Publish()
	fmt.Printf("published: queries now see %d rows (total %d)\n", count(), visible)

	// Bulk convenience: AppendRecords stages and publishes in one call.
	if err := p.AppendRecords("orders", [][]string{
		{"1500", "east", "75"},
		{"1501", "west", "125"},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after AppendRecords: %d rows\n", count())

	// 3. The pinned cursor drains its own snapshot: exactly the 1000
	// rows that existed when it was opened, three publishes ago.
	pinnedRows := 0
	for b := pinned.Next(); b != nil; b = pinned.Next() {
		pinnedRows += b.NumRows()
	}
	fmt.Printf("cursor opened before ingest saw %d rows\n", pinnedRows)

	// Aggregates always land on one published snapshot, never a blend.
	res, err := p.QueryCtx(ctx, "SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region ORDER BY region")
	if err != nil {
		log.Fatal(err)
	}
	for b := res.Next(); b != nil; b = res.Next() {
		for i := 0; i < b.NumRows(); i++ {
			region := b.String(0, i)
			n, _ := b.Int64(1, i)
			sum, _ := b.Float64(2, i)
			fmt.Printf("  %-6s n=%-4d sum=%.0f\n", region, n, sum)
		}
	}
}
