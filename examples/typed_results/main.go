// Typed results: the direct-SQL surface of the platform. Shows the three
// pieces the stringly Query API was redesigned into: QueryCtx returning a
// batch-iterable columnar Result, Prepare amortizing parse cost across
// re-executions, and context cancellation stopping a scan mid-flight.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"datalab"
)

func main() {
	p := datalab.MustNew(datalab.WithSeed("typed-results"))

	// A synthetic 200k-row clickstream, loaded straight into the catalog.
	columns := []string{"user_id", "action", "ms"}
	rows := make([][]string, 200_000)
	actions := []string{"view", "click", "buy"}
	for i := range rows {
		rows[i] = []string{
			fmt.Sprintf("%d", i%5000),
			actions[i%len(actions)],
			fmt.Sprintf("%d", (i*37)%900),
		}
	}
	if err := p.LoadRecords("events", columns, rows); err != nil {
		log.Fatal(err)
	}

	// 1. QueryCtx: a typed Result consumed batch by batch. The plain
	// filtered projection below never materializes anything — each batch
	// is a zero-copy view over the catalog's column storage.
	ctx := context.Background()
	res, err := p.QueryCtx(ctx, "SELECT user_id, ms FROM events WHERE ms > 450")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filtered scan: %d rows, columns %s\n",
		res.NumRows(), strings.Join(res.Columns(), ", "))
	var sum, n int64
	for b := res.Next(); b != nil; b = res.Next() {
		if ms, nulls, ok := b.Int64s(1); ok { // typed slab, zero boxing
			for i, v := range ms {
				if !nulls[i] {
					sum += v
					n++
				}
			}
		}
	}
	fmt.Printf("mean latency of slow events: %.1f ms (over %d rows)\n\n",
		float64(sum)/float64(n), n)

	// 2. Prepare: parse once, execute on every dashboard refresh.
	stmt, err := p.Prepare("SELECT action, COUNT(*) AS n, AVG(ms) FROM events GROUP BY action ORDER BY n DESC")
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	const refreshes = 50
	for i := 0; i < refreshes; i++ {
		if _, err := stmt.Exec(ctx); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("prepared dashboard query: %d refreshes, %v each, zero re-parses\n\n",
		refreshes, time.Since(start)/refreshes)
	last, err := stmt.Exec(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range last.Strings() { // compat materializer, when strings are what you want
		fmt.Println("  ", strings.Join(row, " | "))
	}

	// 3. Cancellation: a context deadline bounds a query's runtime; the
	// worker pool observes it between chunks.
	tight, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	if _, err := p.QueryCtx(tight, "SELECT user_id, ms FROM events ORDER BY ms DESC"); err != nil {
		fmt.Println("\ncancelled sort returned promptly:", err)
	}
}
