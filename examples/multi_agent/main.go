// Multi-agent analysis: a complex question that requires SQL extraction,
// anomaly detection, causal analysis, forecasting, and a final synthesis,
// coordinated by the proxy agent over an FSM plan with structured
// information units (§V).
package main

import (
	"fmt"
	"log"
	"strings"

	"datalab"
)

func main() {
	p := datalab.MustNew(datalab.WithSeed("multi-agent"))

	// Monthly KPI series with an injected anomaly and a driver variable.
	columns := []string{"month", "ad_spend", "revenue"}
	var rows [][]string
	for i := 0; i < 24; i++ {
		spend := 1000 + 50*i
		revenue := 3*spend + 500
		if i == 17 {
			revenue *= 2 // the anomaly the question hunts for
		}
		rows = append(rows, []string{
			fmt.Sprintf("2023-%02d-01", i%12+1),
			fmt.Sprintf("%d", spend),
			fmt.Sprintf("%d", revenue),
		})
	}
	if err := p.LoadRecords("kpi", columns, rows); err != nil {
		log.Fatal(err)
	}

	query := "find anomalies in revenue, explain why revenue moves, forecast revenue, and summarize the insights"
	ans, err := p.Ask(query, "kpi")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("plan executed:", strings.Join(ans.AgentTrace, " -> "))
	fmt.Println("\nfindings:")
	for _, insight := range ans.Insights {
		fmt.Println(" -", insight)
	}
}
