// Server client: spin up the multi-session query server in-process, then
// act as an agent on the other side of the wire — stream a query as JSONL
// batches, stream new rows in, page a server-side cursor, rewind it, and
// read the stats line. Everything the client sees is the agent-first
// protocol: one JSON object per line, self-describing suffix-named fields,
// a terminal ok/error line per request.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"datalab"
	"datalab/internal/server"
)

func main() {
	p := datalab.MustNew(datalab.WithSeed("server-client"))
	if err := server.LoadDemo(p, 10_000); err != nil {
		log.Fatal(err)
	}
	srv := server.New(p, server.Config{}, io.Discard)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 1. Stream a query: startup line, progress line per batch, terminal ok.
	fmt.Println("== streamed query ==")
	resp := post(ts.URL+"/v1/query", map[string]any{
		"sql": "SELECT kind, COUNT(*), SUM(value) FROM events GROUP BY kind ORDER BY kind",
	})
	for i, line := range drain(resp) {
		compact, _ := json.Marshal(pruneRows(line))
		fmt.Printf("  line %d: %s\n", i+1, compact)
	}

	// 2. Stream ingest: rows go in as JSONL arrays, visibility is atomic.
	fmt.Println("== streamed ingest ==")
	var body bytes.Buffer
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&body, "[%d, \"signup\", %d.25]\n", 10_000+i, i%50)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/ingest/events", &body)
	ir, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	last := terminal(drain(ir))
	fmt.Printf("  appended %v rows, %v now visible\n",
		last["rows_appended_total"], last["rows_visible_total"])

	// 3. Server-side cursor: page through, rewind, read again.
	fmt.Println("== cursor with rewind ==")
	cr := post(ts.URL+"/v1/cursors", map[string]any{
		"sql": "SELECT id, value FROM events ORDER BY id",
	})
	created := terminal(drain(cr))
	cursorID := created["cursor_id"].(string)
	fmt.Printf("  cursor %s over %v rows\n", cursorID, created["rows_total"])
	for pass := 1; pass <= 2; pass++ {
		pages, rows := 0, 0
		for {
			nr, err := http.Post(ts.URL+"/v1/cursors/"+cursorID+"/next?max_rows=2000", "", nil)
			if err != nil {
				log.Fatal(err)
			}
			page := terminal(drain(nr))
			pages++
			rows += len(page["rows"].([]any))
			if done, _ := page["cursor_done"].(bool); done {
				break
			}
		}
		fmt.Printf("  pass %d: %d rows in %d pages\n", pass, rows, pages)
		if pass == 1 {
			rw, err := http.Post(ts.URL+"/v1/cursors/"+cursorID+"/rewind", "", nil)
			if err != nil {
				log.Fatal(err)
			}
			drain(rw)
		}
	}

	// 4. The stats line: counters with self-describing suffixes.
	sr, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	stats := terminal(drain(sr))
	fmt.Printf("== stats: queries_total=%v rows_streamed_total=%v ingest_rows_total=%v ==\n",
		stats["queries_total"], stats["rows_streamed_total"], stats["ingest_rows_total"])
}

func post(url string, v any) *http.Response {
	data, _ := json.Marshal(v)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	return resp
}

// drain decodes every JSONL line of a response body.
func drain(resp *http.Response) []map[string]any {
	defer resp.Body.Close()
	var lines []map[string]any
	dec := json.NewDecoder(resp.Body)
	for {
		var l map[string]any
		if err := dec.Decode(&l); err == io.EOF {
			break
		} else if err != nil {
			log.Fatal(err)
		}
		if l["code"] == "error" {
			log.Fatalf("server error: %v", l["error"])
		}
		lines = append(lines, l)
	}
	return lines
}

func terminal(lines []map[string]any) map[string]any {
	return lines[len(lines)-1]
}

// pruneRows elides bulk row payloads so the printed transcript stays
// readable; every other field prints as-is.
func pruneRows(l map[string]any) map[string]any {
	if rows, ok := l["rows"].([]any); ok && len(rows) > 3 {
		out := make(map[string]any, len(l))
		for k, v := range l {
			out[k] = v
		}
		out["rows"] = fmt.Sprintf("[... %d rows ...]", len(rows))
		return out
	}
	return l
}
