// Notebook session: multi-language cells, the live dependency DAG of
// Algorithm 3, and cell-based context management — showing how the
// minimum relevant context keeps token costs down (§VI).
package main

import (
	"fmt"
	"log"
	"strings"

	"datalab"
)

func main() {
	p := datalab.MustNew(datalab.WithSeed("notebook"))
	if err := p.LoadRecords("sales",
		[]string{"region", "amount"},
		[][]string{
			{"east", "100"}, {"west", "250"}, {"north", "90"}, {"east", "175"},
		}); err != nil {
		log.Fatal(err)
	}

	nb := p.NewNotebook("regional-analysis")

	sqlID, err := nb.AddSQL("SELECT region, amount FROM sales", "raw")
	if err != nil {
		log.Fatal(err)
	}
	cleanID, err := nb.AddPython("clean = raw.dropna()")
	if err != nil {
		log.Fatal(err)
	}
	sumID, err := nb.AddPython(`summary = clean.groupby("region").sum()`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := nb.AddMarkdown("## Revenue notes\nEast region threshold is 150."); err != nil {
		log.Fatal(err)
	}
	chartID, err := nb.AddChart(`{"mark":"bar","encoding":{"x":{"field":"region"},"y":{"field":"amount"}},"data":"summary"}`)
	if err != nil {
		log.Fatal(err)
	}
	// An unrelated scratch cell that context management must prune away.
	if _, err := nb.AddPython("scratch = unrelated_frame * 2"); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("notebook has %d cells\n", nb.NumCells())
	fmt.Printf("dependency edges: %s->%s, %s->%s, %s->%s\n",
		sqlID, cleanID, cleanID, sumID, sumID, chartID)
	for _, id := range []string{cleanID, sumID, chartID} {
		fmt.Printf("  %s depends on %v\n", id, nb.DependsOn(id))
	}

	query := "clean the summary dataframe with pandas"
	ctx := nb.ContextFor(query)
	fmt.Printf("\nquery: %q\n", query)
	fmt.Printf("minimum relevant context: cells %s (%d tokens)\n",
		strings.Join(ctx.CellIDs, ", "), ctx.Tokens)
	fmt.Printf("full-notebook context would cost %d tokens\n", nb.FullContextTokens())
	fmt.Printf("token reduction: %.0f%%\n",
		100*(1-float64(ctx.Tokens)/float64(nb.FullContextTokens())))
}
