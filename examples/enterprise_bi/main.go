// Enterprise BI: the paper's motivating scenario. A warehouse table has
// cryptic column names (prod_class4_name, shouldincome_after, ftime); the
// Domain Knowledge Incorporation module learns their semantics from the
// data-processing scripts analysts already run, so queries phrased in
// business language ("income of TencentBI this year") resolve correctly.
package main

import (
	"fmt"
	"log"
	"strings"

	"datalab"
)

func main() {
	p := datalab.MustNew(datalab.WithSeed("enterprise"))

	// Raw warehouse data with cryptic names and no documentation.
	err := p.LoadRecords("23_customer_bg",
		[]string{"uin", "prod_class4_name", "shouldincome_after", "ftime"},
		[][]string{
			{"100001", "TencentBI", "1200.50", "2024-01-15"},
			{"100002", "TencentCloud", "8800.00", "2024-02-20"},
			{"100003", "TencentBI", "1550.75", "2024-03-05"},
			{"100004", "TencentAds", "4300.00", "2024-04-11"},
			{"100005", "TencentBI", "1900.00", "2024-05-23"},
			{"100006", "TencentCloud", "9100.25", "2024-06-30"},
			{"100007", "TencentAds", "3800.00", "2023-07-14"},
			{"100008", "TencentBI", "990.00", "2023-08-02"},
		})
	if err != nil {
		log.Fatal(err)
	}

	// Ask before learning: the cryptic schema defeats the query.
	before, err := p.Ask("total income by product line", "23_customer_bg")
	switch {
	case err != nil:
		fmt.Println("without knowledge, the query fails:", err)
	case before.Err != nil: // the SQL was generated but failed to execute
		fmt.Println("without knowledge, generated SQL fails:", before.Err)
	default:
		fmt.Println("without knowledge, SQL:", orNone(before.SQL))
	}

	// Knowledge generation from script history (Algorithm 1): the daily
	// report script names the columns' business meanings via aliases.
	err = p.LearnKnowledge("sales_db", "23_customer_bg",
		[]datalab.ColumnSchema{
			{Name: "uin", Type: "bigint"},
			{Name: "prod_class4_name", Type: "string"},
			{Name: "shouldincome_after", Type: "double"},
			{Name: "ftime", Type: "date"},
		},
		[]datalab.Script{
			{
				ID:       "daily_income.sql",
				Language: "sql",
				Text: `-- daily income report for product lines
SELECT prod_class4_name AS product_line_name,
       SUM(shouldincome_after) AS income_after_tax
FROM 23_customer_bg
WHERE ftime BETWEEN '2024-01-01' AND '2024-12-31'
GROUP BY prod_class4_name`,
			},
			{
				ID:       "preprocess.py",
				Language: "python",
				Text: `# customer background preprocessing
df = df.rename(columns={"ftime": "partition date", "uin": "user identifier"})
out = df.groupby("prod_class4_name").agg({"shouldincome_after": "sum"})`,
			},
		})
	if err != nil {
		log.Fatal(err)
	}
	p.AddGlossary(datalab.Glossary{
		Term:         "income",
		Definition:   "income after tax, the shouldincome_after measure",
		MapsToColumn: "shouldincome_after",
		MapsToTable:  "23_customer_bg",
	})

	after, err := p.Ask("total income by product line in 2024", "23_customer_bg")
	if err != nil {
		log.Fatal(err)
	}
	if after.Err != nil {
		log.Fatal("generated SQL failed: ", after.Err)
	}
	fmt.Println("\nwith knowledge, SQL:", after.SQL)
	fmt.Println("\nresult:")
	fmt.Println(" ", strings.Join(after.Result.Columns(), " | "))
	for _, row := range after.Result.Strings() {
		fmt.Println(" ", strings.Join(row, " | "))
	}
}

func orNone(s string) string {
	if s == "" {
		return "(no SQL produced)"
	}
	return s
}
