package datalab_test

// Server-path benchmarks: the full HTTP + JSONL wire stack end to end,
// tracked by the CI bench gate under the `Server` family. These live in
// the external test package because internal/server imports datalab.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"datalab"
	"datalab/internal/server"
)

const benchServerRows = 100_000

// newBenchServer starts an in-process server over a demo table.
func newBenchServer(b *testing.B, rows int) *httptest.Server {
	b.Helper()
	p := datalab.MustNew(datalab.WithSeed("bench-server"))
	if err := server.LoadDemo(p, rows); err != nil {
		b.Fatal(err)
	}
	srv := server.New(p, server.Config{}, io.Discard)
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() { ts.Close(); srv.Close() })
	return ts
}

func benchServerQuery(b *testing.B, sql string) {
	ts := newBenchServer(b, benchServerRows)
	body, _ := json.Marshal(map[string]any{"sql": sql})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("status=%d copy=%d err=%v", resp.StatusCode, n, err)
		}
		b.SetBytes(n)
	}
}

// BenchmarkServerQueryStream100k streams the whole demo table as JSONL
// batches — the serialization-bound hot path.
func BenchmarkServerQueryStream100k(b *testing.B) {
	benchServerQuery(b, "SELECT id, kind, value FROM events")
}

// BenchmarkServerQueryAggregate measures per-request overhead (admission,
// session, plan cache, wire framing) when the payload is tiny.
func BenchmarkServerQueryAggregate(b *testing.B) {
	benchServerQuery(b, "SELECT kind, COUNT(*), SUM(value) FROM events GROUP BY kind")
}

// BenchmarkServerCursorNext pages one rewindable server-side cursor,
// rewinding when it drains, so every iteration is a /next round trip.
func BenchmarkServerCursorNext(b *testing.B) {
	ts := newBenchServer(b, benchServerRows)
	body, _ := json.Marshal(map[string]any{"sql": "SELECT id, value FROM events"})
	resp, err := http.Post(ts.URL+"/v1/cursors", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var created struct {
		CursorID string `json:"cursor_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	next := ts.URL + "/v1/cursors/" + created.CursorID + "/next?max_rows=4096"
	rewind := ts.URL + "/v1/cursors/" + created.CursorID + "/rewind"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(next, "", nil)
		if err != nil {
			b.Fatal(err)
		}
		var page struct {
			Done bool `json:"cursor_done"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if page.Done {
			b.StopTimer()
			r, err := http.Post(rewind, "", nil)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
			b.StartTimer()
		}
	}
}

// BenchmarkServerIngestStream streams JSONL rows into a table over HTTP —
// decode, type, append, periodic publish.
func BenchmarkServerIngestStream(b *testing.B) {
	ts := newBenchServer(b, 1000)
	const chunk = 2000
	var payload bytes.Buffer
	for i := 0; i < chunk; i++ {
		fmt.Fprintf(&payload, "[%d, \"bench\", %d.5]\n", 1_000_000+i, i%100)
	}
	raw := payload.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/ingest/events", "application/x-ndjson", bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
}
