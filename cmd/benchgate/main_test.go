package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseOut = `goos: linux
goarch: amd64
BenchmarkSelectivity50-8     	     100	   1000000 ns/op	 1127232 B/op	      51 allocs/op
BenchmarkSelectivity50-8     	     100	   3000000 ns/op	 1127232 B/op	      51 allocs/op
BenchmarkOrderByLimit-8      	     100	    500000 ns/op
BenchmarkRemoved-8           	     100	    100000 ns/op
PASS
`

const headOut = `goos: linux
BenchmarkSelectivity50-16    	     100	   4000000 ns/op
BenchmarkOrderByLimit        	     100	    250000 ns/op
BenchmarkBrandNew-16         	     100	    777000 ns/op
PASS
`

func TestParseBenchAveragesRuns(t *testing.T) {
	means, err := parseBench(writeTemp(t, "base.txt", baseOut))
	if err != nil {
		t.Fatal(err)
	}
	if got := means["BenchmarkSelectivity50"]; got != 2000000 {
		t.Errorf("Selectivity50 mean = %v, want 2000000 (average of two -count runs)", got)
	}
	if got := means["BenchmarkOrderByLimit"]; got != 500000 {
		t.Errorf("OrderByLimit mean = %v, want 500000", got)
	}
	if len(means) != 3 {
		t.Errorf("parsed %d benchmarks, want 3", len(means))
	}
}

func TestCompareGeomeanAndNewBenchmarks(t *testing.T) {
	base, err := parseBench(writeTemp(t, "base.txt", baseOut))
	if err != nil {
		t.Fatal(err)
	}
	head, err := parseBench(writeTemp(t, "head.txt", headOut))
	if err != nil {
		t.Fatal(err)
	}
	ratios, geomean, onlyBase, onlyHead := compare(base, head)
	// Selectivity50: 4e6/2e6 = 2.0 (GOMAXPROCS suffix stripped across
	// machines); OrderByLimit: 0.5. Geomean = sqrt(2 * 0.5) = 1.
	if len(ratios) != 2 {
		t.Fatalf("common ratios = %v, want 2 entries", ratios)
	}
	if r := ratios["BenchmarkSelectivity50"]; math.Abs(r-2.0) > 1e-9 {
		t.Errorf("Selectivity50 ratio = %v, want 2.0", r)
	}
	if math.Abs(geomean-1.0) > 1e-9 {
		t.Errorf("geomean = %v, want 1.0", geomean)
	}
	if len(onlyBase) != 1 || onlyBase[0] != "BenchmarkRemoved" {
		t.Errorf("onlyBase = %v, want [BenchmarkRemoved]", onlyBase)
	}
	if len(onlyHead) != 1 || onlyHead[0] != "BenchmarkBrandNew" {
		t.Errorf("onlyHead = %v, want [BenchmarkBrandNew] (new benchmarks must not gate)", onlyHead)
	}
}

func TestCompareNoCommon(t *testing.T) {
	ratios, geomean, _, _ := compare(
		map[string]float64{"BenchmarkA": 1},
		map[string]float64{"BenchmarkB": 1})
	if len(ratios) != 0 || geomean != 1 {
		t.Errorf("disjoint inputs: ratios=%v geomean=%v, want empty and 1", ratios, geomean)
	}
}
