// Command benchgate compares two `go test -bench` outputs and fails when
// the geometric-mean ns/op regression exceeds a threshold. CI runs it as
// the benchmark-regression gate: benchmarks run on the merge-base and on
// the PR head, benchstat renders the human-readable comparison artifact,
// and benchgate decides pass/fail deterministically (benchstat's output
// format is not a stable parsing target).
//
// Usage:
//
//	benchgate [-threshold 1.20] [-min-common 1] base.txt head.txt
//
// Benchmarks are matched by name with the -N GOMAXPROCS suffix stripped;
// multiple runs of one benchmark (from -count) average their ns/op.
// Benchmarks present in only one file are reported but do not gate, so
// newly added benchmark families pass on the PR that introduces them.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one benchmark result line, e.g.
//
//	BenchmarkOrderByLimit-8   	     100	   1650612 ns/op	 6296 B/op	78 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.eE+]+) ns/op`)

// parseBench reads a `go test -bench` output and returns mean ns/op per
// benchmark name.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	sums := map[string]float64{}
	counts := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil || ns <= 0 {
			continue
		}
		sums[m[1]] += ns
		counts[m[1]]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	means := make(map[string]float64, len(sums))
	for name, sum := range sums {
		means[name] = sum / float64(counts[name])
	}
	return means, nil
}

// compare computes per-benchmark head/base ns/op ratios over the common
// names and their geometric mean. Names in only one input are returned
// separately for reporting.
func compare(base, head map[string]float64) (ratios map[string]float64, geomean float64, onlyBase, onlyHead []string) {
	ratios = map[string]float64{}
	logSum := 0.0
	for name, b := range base {
		h, ok := head[name]
		if !ok {
			onlyBase = append(onlyBase, name)
			continue
		}
		r := h / b
		ratios[name] = r
		logSum += math.Log(r)
	}
	for name := range head {
		if _, ok := base[name]; !ok {
			onlyHead = append(onlyHead, name)
		}
	}
	sort.Strings(onlyBase)
	sort.Strings(onlyHead)
	if len(ratios) == 0 {
		return ratios, 1, onlyBase, onlyHead
	}
	return ratios, math.Exp(logSum / float64(len(ratios))), onlyBase, onlyHead
}

func main() {
	threshold := flag.Float64("threshold", 1.20, "fail when geomean(head/base ns/op) exceeds this")
	minRuns := flag.Int("min-common", 1, "fail when fewer than this many benchmarks are common to both files")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [-threshold 1.20] [-min-common 1] base.txt head.txt")
		os.Exit(2)
	}
	base, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	head, err := parseBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	ratios, geomean, onlyBase, onlyHead := compare(base, head)

	names := make([]string, 0, len(ratios))
	for name := range ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-40s base %12.0f ns/op  head %12.0f ns/op  ratio %.3f\n",
			name, base[name], head[name], ratios[name])
	}
	for _, name := range onlyBase {
		fmt.Printf("%-40s only in base (ignored)\n", name)
	}
	for _, name := range onlyHead {
		fmt.Printf("%-40s only in head (new, ignored)\n", name)
	}
	if len(ratios) < *minRuns {
		fmt.Printf("FAIL: only %d common benchmark(s), need %d\n", len(ratios), *minRuns)
		os.Exit(1)
	}
	fmt.Printf("geomean head/base ns/op ratio: %.3f (threshold %.2f over %d benchmarks)\n",
		geomean, *threshold, len(ratios))
	if geomean > *threshold {
		fmt.Println("FAIL: benchmark regression gate exceeded")
		os.Exit(1)
	}
	fmt.Println("PASS")
}
