// Command datalab-knowledge runs the Domain Knowledge Incorporation
// pipeline (Algorithm 1) over a synthetic enterprise corpus and prints the
// generated knowledge bundles plus quality statistics against expert
// annotations — the knowledge-generation deployment of §VII-C.1 in CLI
// form.
package main

import (
	"flag"
	"fmt"
	"log"

	"datalab/internal/benchgen"
	"datalab/internal/knowledge"
	"datalab/internal/llm"
	"datalab/internal/metrics"
)

func main() {
	n := flag.Int("tables", 5, "number of enterprise tables to process")
	seed := flag.String("seed", "knowledge-cli", "corpus seed")
	verbose := flag.Bool("v", false, "print full knowledge bundles")
	flag.Parse()

	client := llm.NewClient(llm.GPT4, *seed)
	gen := knowledge.NewGenerator(client)
	tables := benchgen.GenerateEnterprise(*seed, *n)

	var colSES []float64
	for _, et := range tables {
		bundle, err := gen.Generate(et.Schema, et.Scripts, et.Lineage)
		if err != nil {
			log.Fatalf("generate %s: %v", et.Schema.Name, err)
		}
		fmt.Printf("table %s: %q\n", bundle.Table.Name, bundle.Table.Description)
		for _, ck := range bundle.Columns {
			ses := metrics.SES(ck.Description, et.ExpertColumnDesc[ck.Name])
			colSES = append(colSES, ses)
			if *verbose {
				fmt.Printf("  %-22s SES=%.2f  %q\n", ck.Name, ses, ck.Description)
				for _, d := range ck.Derived {
					fmt.Printf("    derived %s = %s\n", d.Name, d.CalculationLogic)
				}
			}
		}
		if len(bundle.Values) > 0 && *verbose {
			fmt.Printf("  %d value-knowledge entries\n", len(bundle.Values))
		}
	}
	fmt.Printf("\n%d tables, %d columns; mean column SES %.3f (%.0f%% above 0.7)\n",
		len(tables), len(colSES), metrics.Mean(colSES),
		100*metrics.FractionAbove(colSES, 0.7))
	u := client.Usage()
	fmt.Printf("simulated token usage: %d prompt + %d completion over %d calls\n",
		u.PromptTokens, u.CompletionTokens, u.Calls)
}
