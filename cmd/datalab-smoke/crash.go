package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"
)

// Crash-recovery scenario, run as two phases around a `docker kill -s KILL`
// of the server container:
//
//	datalab-smoke -crash prepare -crash-rows 100000 -state /tmp/crash.json
//	# ... docker compose kill -s SIGKILL datalab-server; docker compose up --wait ...
//	datalab-smoke -crash verify -state /tmp/crash.json
//
// prepare streams -crash-rows rows into the events table, runs a battery of
// probe queries over the whole table, and writes their results plus the
// durable snapshot_version to the state file. verify, against the restarted
// server, asserts the stats line proves a recovery actually happened
// (recovered_rows_total > 0, snapshot_version identical) and that every
// probe query returns byte-identical results — i.e. the kill lost nothing
// and applied no partial chunk.

// crashProbes are the queries whose results must survive a SIGKILL
// byte-for-byte. They cover aggregate totals, per-group aggregates, and a
// deterministic sample of raw rows ordered by key.
var crashProbes = []string{
	"SELECT COUNT(*) FROM events",
	"SELECT COUNT(*), SUM(value) FROM events WHERE kind = 'crash'",
	"SELECT kind, COUNT(*), SUM(value) FROM events GROUP BY kind ORDER BY kind",
	"SELECT id, kind, value FROM events WHERE id % 9973 = 0 ORDER BY id",
}

// crashState is what prepare persists for verify to check against.
type crashState struct {
	Rows            int               `json:"rows_total"`
	SnapshotVersion float64           `json:"snapshot_version"`
	Probes          []json.RawMessage `json:"probes"`
}

// probeRows runs one query and returns its full result set as canonical
// JSON (the concatenated `rows` payloads of every progress line).
func probeRows(where, sql string) (json.RawMessage, bool) {
	resp, err := postJSON("/v1/query", map[string]any{"sql": sql})
	if err != nil {
		failf("%s: probe %q: %v", where, sql, err)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		failf("%s: probe %q: status %d", where, sql, resp.StatusCode)
		return nil, false
	}
	lines := decodeStream(where, resp.Body)
	if len(lines) == 0 || lines[len(lines)-1]["code"] != "ok" {
		failf("%s: probe %q did not terminate with ok", where, sql)
		return nil, false
	}
	var all []any
	for _, l := range lines {
		if l["code"] != "progress" {
			continue
		}
		if rowsArr, ok := l["rows"].([]any); ok {
			all = append(all, rowsArr...)
		}
	}
	data, err := json.Marshal(all)
	if err != nil {
		failf("%s: probe %q: marshal: %v", where, sql, err)
		return nil, false
	}
	return data, true
}

// crashIngest streams n rows of kind "crash" into events, publishing as one
// NDJSON request, and verifies the terminal ok line counted all of them.
func crashIngest(n int) bool {
	const batch = 10_000
	sent := 0
	for sent < n {
		m := batch
		if n-sent < m {
			m = n - sent
		}
		var body bytes.Buffer
		for i := 0; i < m; i++ {
			id := 10_000_000 + sent + i
			fmt.Fprintf(&body, "[%d, \"crash\", %d.25]\n", id, (sent+i)%1000)
		}
		resp, err := do(http.MethodPost, "/v1/ingest/events", &body, "application/x-ndjson")
		if err != nil {
			failf("crash_prepare: ingest: %v", err)
			return false
		}
		lines := decodeStream("crash_prepare", resp.Body)
		resp.Body.Close()
		if len(lines) == 0 {
			return false
		}
		last := lines[len(lines)-1]
		if last["code"] != "ok" || int(num(last["rows_appended_total"])) != m {
			failf("crash_prepare: ingest batch terminal line = %v", last)
			return false
		}
		sent += m
	}
	return true
}

// crashPrepare ingests the crash workload and records the ground truth.
func crashPrepare(rows int, statePath string) {
	start := time.Now()
	if !statBool("durability_enabled") {
		failf("crash_prepare: server reports durability_enabled != true — nothing to crash-test")
		return
	}
	if !crashIngest(rows) {
		return
	}
	st := crashState{Rows: rows, SnapshotVersion: statValue("snapshot_version")}
	if st.SnapshotVersion <= 0 {
		failf("crash_prepare: snapshot_version = %v after ingest, want > 0", st.SnapshotVersion)
		return
	}
	for _, sql := range crashProbes {
		data, ok := probeRows("crash_prepare", sql)
		if !ok {
			return
		}
		st.Probes = append(st.Probes, data)
	}
	// Compact marshal: indentation would reformat the embedded RawMessage
	// probe results and break verify's byte-for-byte comparison.
	data, err := json.Marshal(st)
	if err != nil {
		failf("crash_prepare: marshal state: %v", err)
		return
	}
	if err := os.WriteFile(statePath, data, 0o644); err != nil {
		failf("crash_prepare: write state: %v", err)
		return
	}
	okf("crash_prepare", fmt.Sprintf(`,"rows_total":%d,"snapshot_version":%d,"duration_ms":%d`,
		rows, int(st.SnapshotVersion), time.Since(start).Milliseconds()))
}

// crashVerify runs against the restarted server and proves recovery was
// complete: the stats line shows a real replay, the snapshot version is
// exactly the last durable publish, and every probe matches byte for byte.
func crashVerify(statePath string) {
	start := time.Now()
	data, err := os.ReadFile(statePath)
	if err != nil {
		failf("crash_verify: read state: %v", err)
		return
	}
	var st crashState
	if err := json.Unmarshal(data, &st); err != nil {
		failf("crash_verify: parse state: %v", err)
		return
	}
	recovered := statValue("recovered_rows_total")
	if recovered <= 0 {
		failf("crash_verify: recovered_rows_total = %v, want > 0 — the restart did not replay a WAL", recovered)
	}
	if got := statValue("snapshot_version"); got != st.SnapshotVersion {
		failf("crash_verify: snapshot_version = %v, want %v — recovery stopped at the wrong version", got, st.SnapshotVersion)
	}
	for i, sql := range crashProbes {
		got, ok := probeRows("crash_verify", sql)
		if !ok {
			return
		}
		if i >= len(st.Probes) {
			failf("crash_verify: state file has no recorded result for probe %q", sql)
			continue
		}
		if !bytes.Equal(got, st.Probes[i]) {
			failf("crash_verify: probe %q diverged after recovery:\n pre-crash: %s\npost-crash: %s", sql, st.Probes[i], got)
		}
	}
	okf("crash_verify", fmt.Sprintf(`,"recovered_rows_total":%d,"snapshot_version":%d,"probes_total":%d,"duration_ms":%d`,
		int(recovered), int(st.SnapshotVersion), len(crashProbes), time.Since(start).Milliseconds()))
}
