// Command datalab-smoke is the end-to-end smoke client CI runs against a
// containerized datalab-server. It validates the agent-first JSONL wire
// protocol line by line — every line must carry a known `code`, the
// suffix-named fields each code promises (`rows_total`, `batch_rows`,
// `duration_ms`, ...), suffix-consistent value types, and no unredacted
// `*_secret` value — across five scenarios:
//
//  1. streamed query of the full demo table (startup → progress* → ok,
//     with row-count bookkeeping cross-checked)
//  2. streamed JSONL ingest followed by a count query proving visibility
//  3. admission control: a flood of concurrent heavy queries must produce
//     at least one typed HTTP 429 backpressure rejection
//  4. mid-stream disconnect: dropping a streaming connection must surface
//     as queries_canceled_total on /v1/stats (a cancellation, not an error)
//  5. server-side cursors: paginate, rewind, re-read identically, delete
//
// Exit status 0 means every scenario passed; any protocol violation or
// failed expectation exits 1 with one JSONL error line per finding.
//
// With -crash prepare|verify the client instead runs one half of the
// crash-recovery scenario (see crash.go): prepare ingests a large durable
// workload and records ground-truth query results; after the harness
// SIGKILLs and restarts the server, verify asserts the recovered state is
// byte-identical.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

var (
	baseURL   = flag.String("url", "http://localhost:8080", "server base URL")
	rows      = flag.Int("rows", 100_000, "expected demo table row count")
	flood     = flag.Int("flood", 8, "concurrent heavy queries for the backpressure scenario")
	waitFor   = flag.Duration("wait", 60*time.Second, "how long to wait for the server to become healthy")
	crashMode = flag.String("crash", "", "crash-recovery phase: `prepare` (ingest + record ground truth) or `verify` (assert recovery); empty runs the standard scenarios")
	crashRows = flag.Int("crash-rows", 100_000, "rows to ingest in the -crash prepare phase")
	statePath = flag.String("state", "smoke-crash-state.json", "ground-truth state file shared between -crash prepare and verify")
	failures  int
)

func failf(format string, args ...any) {
	failures++
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	fmt.Printf(`{"code":"error","error":%s}`+"\n", msg)
}

func okf(scenario string, fields string) {
	fmt.Printf(`{"code":"ok","scenario":%q%s}`+"\n", scenario, fields)
}

var token = os.Getenv("DATALAB_AUTH_TOKEN_SECRET")

func do(method, path string, body io.Reader, contentType string) (*http.Response, error) {
	req, err := http.NewRequest(method, *baseURL+path, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	return http.DefaultClient.Do(req)
}

func postJSON(path string, v any) (*http.Response, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return do(http.MethodPost, path, bytes.NewReader(data), "application/json")
}

// knownCodes is the complete wire vocabulary.
var knownCodes = map[string]bool{"startup": true, "progress": true, "ok": true, "error": true, "cancel": true}

// requiredFields maps a code to the fields every such line must carry
// regardless of which stream it appears in. Progress lines are stream
// specific (query batches vs ingest watermarks), so the query scenario
// checks its own progress shape.
var requiredFields = map[string][]string{
	"startup": {"columns", "rows_total"},
	"error":   {"error", "error_code"},
}

// queryProgressFields is the shape of a query-stream progress line.
var queryProgressFields = []string{"batch_rows", "rows_sent", "rows_total", "duration_ms", "rows"}

// checkLine validates one decoded wire line: known code, required fields,
// suffix/type consistency, redacted secrets. where names the scenario for
// error messages.
func checkLine(where string, l map[string]any) {
	code, _ := l["code"].(string)
	if !knownCodes[code] {
		failf("%s: unknown code %q in line %v", where, code, l)
		return
	}
	for _, f := range requiredFields[code] {
		if _, ok := l[f]; !ok {
			failf("%s: %s line missing required field %q: %v", where, code, f, l)
		}
	}
	checkFields(where, l)
}

// checkFields walks every field recursively: numeric suffixes must hold
// numbers, *_secret values must be redacted.
func checkFields(where string, v any) {
	switch m := v.(type) {
	case map[string]any:
		for k, val := range m {
			lk := strings.ToLower(k)
			if strings.HasSuffix(lk, "_secret") {
				if s, _ := val.(string); s != "***" && val != nil {
					failf("%s: unredacted secret field %q", where, k)
				}
			}
			for _, suf := range []string{"_ms", "_total", "_rows", "_bytes", "_epoch_ms"} {
				if strings.HasSuffix(lk, suf) {
					if _, ok := val.(float64); !ok {
						failf("%s: field %q has suffix %s but non-numeric value %v", where, k, suf, val)
					}
					break
				}
			}
			checkFields(where, val)
		}
	case []any:
		for _, val := range m {
			checkFields(where, val)
		}
	}
}

// decodeStream reads and validates every JSONL line of a response body.
func decodeStream(where string, body io.Reader) []map[string]any {
	var lines []map[string]any
	dec := json.NewDecoder(body)
	for {
		var l map[string]any
		if err := dec.Decode(&l); err == io.EOF {
			break
		} else if err != nil {
			failf("%s: malformed JSONL line %d: %v", where, len(lines)+1, err)
			return lines
		}
		checkLine(where, l)
		lines = append(lines, l)
	}
	if len(lines) == 0 {
		failf("%s: response carried no JSONL lines", where)
	}
	return lines
}

func waitHealthy() bool {
	deadline := time.Now().Add(*waitFor)
	for time.Now().Before(deadline) {
		resp, err := do(http.MethodGet, "/healthz", nil, "")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		time.Sleep(500 * time.Millisecond)
	}
	failf("server never became healthy at %s within %v", *baseURL, *waitFor)
	return false
}

// scenarioQueryStream: the full demo table must stream as validated
// batches whose counters add up.
func scenarioQueryStream() {
	start := time.Now()
	resp, err := postJSON("/v1/query", map[string]any{"sql": "SELECT id, kind, value FROM events"})
	if err != nil {
		failf("query: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		failf("query: status %d", resp.StatusCode)
		return
	}
	lines := decodeStream("query", resp.Body)
	if len(lines) < 3 {
		failf("query: expected startup + progress* + ok, got %d lines", len(lines))
		return
	}
	if lines[0]["code"] != "startup" {
		failf("query: first line code = %v", lines[0]["code"])
	}
	if got := int(num(lines[0]["rows_total"])); got != *rows {
		failf("query: rows_total = %d, want %d", got, *rows)
	}
	last := lines[len(lines)-1]
	if last["code"] != "ok" {
		failf("query: terminal code = %v", last["code"])
	}
	seen, batches := 0, 0
	for _, l := range lines[1 : len(lines)-1] {
		if l["code"] != "progress" {
			failf("query: mid-stream code = %v", l["code"])
			continue
		}
		batches++
		for _, f := range queryProgressFields {
			if _, ok := l[f]; !ok {
				failf("query: batch %d missing required field %q", batches, f)
			}
		}
		n := int(num(l["batch_rows"]))
		if rowsArr, ok := l["rows"].([]any); !ok || len(rowsArr) != n {
			failf("query: batch %d: batch_rows=%d but rows payload has %d", batches, n, len(l["rows"].([]any)))
		}
		seen += n
		if int(num(l["rows_sent"])) != seen {
			failf("query: batch %d: rows_sent=%v, want %d", batches, l["rows_sent"], seen)
		}
	}
	if seen != *rows {
		failf("query: streamed %d rows, want %d", seen, *rows)
	}
	okf("query_stream", fmt.Sprintf(`,"rows_total":%d,"batches_total":%d,"duration_ms":%d`,
		seen, batches, time.Since(start).Milliseconds()))
}

// scenarioIngest: stream rows in as JSONL, then prove they are visible.
func scenarioIngest() {
	const extra = 5000
	var body bytes.Buffer
	for i := 0; i < extra; i++ {
		id := *rows + i
		fmt.Fprintf(&body, "[%d, \"smoke\", %d.5]\n", id, i%100)
	}
	resp, err := do(http.MethodPost, "/v1/ingest/events", &body, "application/x-ndjson")
	if err != nil {
		failf("ingest: %v", err)
		return
	}
	lines := decodeStream("ingest", resp.Body)
	resp.Body.Close()
	last := lines[len(lines)-1]
	if last["code"] != "ok" || int(num(last["rows_appended_total"])) != extra {
		failf("ingest: terminal line = %v", last)
		return
	}
	resp, err = postJSON("/v1/query", map[string]any{"sql": "SELECT COUNT(*) FROM events WHERE kind = 'smoke'"})
	if err != nil {
		failf("ingest: count query: %v", err)
		return
	}
	qlines := decodeStream("ingest_count", resp.Body)
	resp.Body.Close()
	if len(qlines) < 2 {
		failf("ingest: count query returned %d lines", len(qlines))
		return
	}
	row, ok := qlines[1]["rows"].([]any)
	if !ok || len(row) == 0 {
		failf("ingest: count query progress line carried no rows")
		return
	}
	if got := int(num(row[0].([]any)[0])); got != extra {
		failf("ingest: %d smoke rows visible, want %d", got, extra)
		return
	}
	okf("ingest_stream", fmt.Sprintf(`,"rows_appended_total":%d`, extra))
}

// scenarioBackpressure floods the server with heavy concurrent queries;
// at least one must be rejected with the typed backpressure error.
func scenarioBackpressure() {
	heavy := map[string]any{"sql": "SELECT id, kind, value FROM events ORDER BY value, kind, id"}
	var mu sync.Mutex
	rejected, succeeded := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < *flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := postJSON("/v1/query", heavy)
			if err != nil {
				failf("backpressure: flood request: %v", err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				lines := decodeStream("backpressure", resp.Body)
				mu.Lock()
				rejected++
				mu.Unlock()
				if len(lines) > 0 {
					if lines[0]["error_code"] != "backpressure" {
						failf("backpressure: 429 line error_code = %v", lines[0]["error_code"])
					}
					if _, ok := lines[0]["queue_wait_ms"]; !ok {
						failf("backpressure: 429 line missing queue_wait_ms")
					}
				}
			case http.StatusOK:
				io.Copy(io.Discard, resp.Body)
				mu.Lock()
				succeeded++
				mu.Unlock()
			default:
				failf("backpressure: unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if rejected == 0 {
		failf("backpressure: %d concurrent heavy queries, none rejected — admission control inert", *flood)
		return
	}
	if succeeded == 0 {
		failf("backpressure: every query rejected — admission control admits nothing")
		return
	}
	okf("backpressure", fmt.Sprintf(`,"queries_rejected_total":%d,"queries_ok_total":%d`, rejected, succeeded))
}

// scenarioDisconnect drops a streaming connection mid-query and expects
// the server to record a cancellation (not an error) in its stats.
func scenarioDisconnect() {
	before := statValue("queries_canceled_total")
	ctx, cancel := context.WithCancel(context.Background())
	data, _ := json.Marshal(map[string]any{"sql": "SELECT id, kind, value FROM events"})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, *baseURL+"/v1/query", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		failf("disconnect: %v", err)
		return
	}
	buf := make([]byte, 8192)
	if _, err := resp.Body.Read(buf); err != nil {
		failf("disconnect: first read: %v", err)
	}
	cancel() // hang up mid-stream
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if statValue("queries_canceled_total") > before {
			okf("disconnect_cancels", fmt.Sprintf(`,"queries_canceled_total":%d`, int(statValue("queries_canceled_total"))))
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
	failf("disconnect: queries_canceled_total never advanced past %v — disconnect not observed as cancellation", before)
}

// scenarioCursor paginates a server-side cursor, rewinds, and re-reads.
func scenarioCursor() {
	resp, err := postJSON("/v1/cursors", map[string]any{"sql": "SELECT id FROM events ORDER BY id LIMIT 5000"})
	if err != nil {
		failf("cursor: %v", err)
		return
	}
	lines := decodeStream("cursor_create", resp.Body)
	resp.Body.Close()
	if lines[0]["code"] != "ok" {
		failf("cursor: create line = %v", lines[0])
		return
	}
	id, _ := lines[0]["cursor_id"].(string)
	readAll := func() int {
		total := 0
		for {
			r, err := do(http.MethodPost, "/v1/cursors/"+id+"/next?max_rows=1500", nil, "")
			if err != nil {
				failf("cursor: next: %v", err)
				return total
			}
			pl := decodeStream("cursor_next", r.Body)
			r.Body.Close()
			if len(pl) == 0 {
				return total
			}
			if rowsArr, ok := pl[0]["rows"].([]any); ok {
				total += len(rowsArr)
			}
			if done, _ := pl[0]["cursor_done"].(bool); done {
				return total
			}
		}
	}
	first := readAll()
	if first != 5000 {
		failf("cursor: first read paged %d rows, want 5000", first)
	}
	r, err := do(http.MethodPost, "/v1/cursors/"+id+"/rewind", nil, "")
	if err != nil {
		failf("cursor: rewind: %v", err)
		return
	}
	decodeStream("cursor_rewind", r.Body)
	r.Body.Close()
	if second := readAll(); second != first {
		failf("cursor: re-read after rewind paged %d rows, want %d", second, first)
	}
	r, err = do(http.MethodDelete, "/v1/cursors/"+id, nil, "")
	if err != nil {
		failf("cursor: delete: %v", err)
		return
	}
	decodeStream("cursor_delete", r.Body)
	r.Body.Close()
	okf("cursor_pagination", fmt.Sprintf(`,"rows_total":%d`, first))
}

// statValue fetches one numeric field from /v1/stats (-1 on failure).
func statValue(field string) float64 {
	resp, err := do(http.MethodGet, "/v1/stats", nil, "")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var l map[string]any
	if json.NewDecoder(resp.Body).Decode(&l) != nil {
		return -1
	}
	return num(l[field])
}

// statBool fetches one boolean field from /v1/stats (false on failure).
func statBool(field string) bool {
	resp, err := do(http.MethodGet, "/v1/stats", nil, "")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var l map[string]any
	if json.NewDecoder(resp.Body).Decode(&l) != nil {
		return false
	}
	b, _ := l[field].(bool)
	return b
}

func num(v any) float64 {
	f, _ := v.(float64)
	return f
}

func main() {
	flag.Parse()
	if !waitHealthy() {
		os.Exit(1)
	}
	switch *crashMode {
	case "":
		// fall through to the standard five scenarios
	case "prepare", "verify":
		if *crashMode == "prepare" {
			crashPrepare(*crashRows, *statePath)
		} else {
			crashVerify(*statePath)
		}
		if failures > 0 {
			fmt.Printf(`{"code":"error","error":"crash %s failed","failures_total":%d}`+"\n", *crashMode, failures)
			os.Exit(1)
		}
		return
	default:
		fmt.Printf(`{"code":"error","error":"unknown -crash mode %q (want prepare or verify)"}`+"\n", *crashMode)
		os.Exit(2)
	}
	scenarioQueryStream()
	scenarioIngest()
	scenarioBackpressure()
	scenarioDisconnect()
	scenarioCursor()
	if failures > 0 {
		fmt.Printf(`{"code":"error","error":"smoke failed","failures_total":%d}`+"\n", failures)
		os.Exit(1)
	}
	fmt.Println(`{"code":"ok","event":"smoke","scenarios_total":5}`)
}
