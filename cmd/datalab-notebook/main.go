// Command datalab-notebook runs a scripted headless notebook session:
// it builds a multi-language notebook, prints the dependency DAG, and
// shows the context-managed cost of follow-up queries — the backend the
// paper's JupyterLab frontend would call.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"datalab"
)

func main() {
	seed := flag.String("seed", "notebook-cli", "session seed")
	flag.Parse()

	p := datalab.MustNew(datalab.WithSeed(*seed))
	if err := p.LoadRecords("orders",
		[]string{"channel", "amount", "order_date"},
		[][]string{
			{"web", "120", "2024-01-04"},
			{"mobile", "85", "2024-01-09"},
			{"web", "240", "2024-02-13"},
			{"store", "60", "2024-02-27"},
			{"mobile", "310", "2024-03-08"},
			{"web", "95", "2024-03-21"},
		}); err != nil {
		log.Fatal(err)
	}

	nb := p.NewNotebook("orders-review")
	ids := map[string]string{}
	add := func(kind string, fn func() (string, error)) {
		id, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		ids[kind] = id
		fmt.Printf("added %-8s cell %s\n", kind, id)
	}
	add("sql", func() (string, error) {
		return nb.AddSQL("SELECT channel, amount FROM orders", "raw_orders")
	})
	add("python", func() (string, error) {
		return nb.AddPython("filtered = raw_orders[raw_orders[\"amount\"] > 80]")
	})
	add("python2", func() (string, error) {
		return nb.AddPython("by_channel = filtered.groupby(\"channel\").sum()")
	})
	add("markdown", func() (string, error) {
		return nb.AddMarkdown("## Channel review\nMobile growth is the quarter's focus.")
	})
	add("chart", func() (string, error) {
		return nb.AddChart(`{"mark":"bar","encoding":{"x":{"field":"channel"},"y":{"field":"amount"}},"data":"by_channel"}`)
	})

	fmt.Println("\ndependency DAG:")
	for _, kind := range []string{"python", "python2", "chart"} {
		fmt.Printf("  %s <- %v\n", ids[kind], nb.DependsOn(ids[kind]))
	}

	// Re-run the SQL cell through the typed result API: the source was
	// plan-cached when the cell was added, so this skips the parser, and
	// the batches are zero-copy views over the catalog columns.
	res, err := nb.RunSQL(context.Background(), ids["sql"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSQL cell %s result (%d rows): %s\n",
		ids["sql"], res.NumRows(), strings.Join(res.Columns(), " | "))
	var total float64
	for b := res.Next(); b != nil; b = res.Next() {
		for i := 0; i < b.NumRows(); i++ {
			if v, ok := b.Float64(1, i); ok {
				total += v
			}
		}
	}
	fmt.Printf("  sum(amount) via typed batches: %.0f\n", total)

	for _, q := range []string{
		"refine the sql extraction of orders",
		"clean the filtered dataframe with pandas",
		"draw a chart of amounts by channel",
	} {
		ctx := nb.ContextFor(q)
		fmt.Printf("\nquery %q\n  context: [%s] = %d tokens (full notebook: %d)\n",
			q, strings.Join(ctx.CellIDs, " "), ctx.Tokens, nb.FullContextTokens())
	}
}
