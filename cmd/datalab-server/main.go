// Command datalab-server serves a datalab Platform over HTTP with the
// agent-first JSONL wire protocol (see docs/SERVER.md): per-session
// contexts over a shared catalog, server-side cursors, streamed query
// batches, streamed ingest, admission control with typed backpressure,
// and graceful cancellation when a client disconnects mid-stream.
//
// Operational output is JSONL on stdout — a startup line echoing the
// effective config (secrets redacted) followed by one ok/cancel/error
// event per request.
//
//	datalab-server -addr :8080 -demo-rows 100000
//
// With -data the catalog is durable: every registration and published
// chunk is journaled to a write-ahead log in that directory (fsync
// policy via -fsync), and boot recovers the exact pre-crash state,
// reported on a startup JSONL line with recovered_rows_total and
// replay_duration_ms. Without -data the catalog is memory-only.
//
//	datalab-server -addr :8080 -demo-rows 100000 -data /data -fsync always
//
// The bearer token, when required, comes from the DATALAB_AUTH_TOKEN_SECRET
// environment variable (the _secret suffix is the redaction contract).
//
// `datalab-server -check http://localhost:8080/healthz` probes a running
// server and exits 0/1 — the Docker HEALTHCHECK hook for images that
// carry no shell or curl.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datalab"
	"datalab/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demoRows := flag.Int("demo-rows", 0, "register a demo `events` table with this many rows")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrently executing queries (0 = 2x GOMAXPROCS)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "how long an over-limit query queues before a typed backpressure rejection")
	sessionIdle := flag.Duration("session-idle", 15*time.Minute, "idle TTL after which sessions are swept")
	pageRows := flag.Int("page-rows", 4096, "default cursor page size in rows")
	dataDir := flag.String("data", "", "data directory for the write-ahead log; empty = memory-only (rows lost on restart)")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always, interval, or off")
	checkpointBytes := flag.Int64("checkpoint-bytes", 0, "WAL bytes between automatic checkpoints (0 = 64MiB default, negative disables)")
	check := flag.String("check", "", "health-probe mode: GET this URL, exit 0 on ok (Docker HEALTHCHECK)")
	flag.Parse()

	if *check != "" {
		os.Exit(probe(*check))
	}

	var p *datalab.Platform
	if *dataDir != "" {
		start := time.Now()
		var err error
		p, err = datalab.OpenDurable(*dataDir, datalab.DurabilityOptions{
			Fsync:           *fsync,
			CheckpointBytes: *checkpointBytes,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, `{"code":"error","event":"recovery","error":%q}`+"\n", err.Error())
			os.Exit(1)
		}
		ds := p.DurabilityStats()
		fmt.Printf(`{"code":"startup","event":"recovery","data_dir":%q,"fsync":%q,"recovered_rows_total":%d,"recovered_tables":%d,"snapshot_version":%d,"replay_duration_ms":%.3f,"open_duration_ms":%.3f}`+"\n",
			*dataDir, *fsync, ds.RecoveredRows, len(p.Tables()), ds.SnapshotVersion,
			float64(ds.ReplayDuration.Microseconds())/1000, float64(time.Since(start).Microseconds())/1000)
	} else {
		p = datalab.MustNew()
	}
	defer p.Close()
	if *demoRows > 0 && !hasTable(p, "events") {
		// A recovered catalog already holds the durable events table;
		// re-registering the demo would wipe it with fresh rows.
		if err := server.LoadDemo(p, *demoRows); err != nil {
			fmt.Fprintf(os.Stderr, `{"code":"error","error":%q}`+"\n", err.Error())
			os.Exit(1)
		}
	}
	srv := server.New(p, server.Config{
		MaxConcurrentQueries: *maxConcurrent,
		QueueTimeout:         *queueTimeout,
		SessionIdleTimeout:   *sessionIdle,
		PageRows:             *pageRows,
		AuthTokenSecret:      os.Getenv("DATALAB_AUTH_TOKEN_SECRET"),
	}, os.Stdout)
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf(`{"code":"ok","event":"listening","addr":%q,"demo_rows":%d}`+"\n", *addr, *demoRows)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, `{"code":"error","error":%q}`+"\n", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, give in-flight streams a moment,
	// then cancel every session so the executors abort.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, `{"code":"error","event":"shutdown","error":%q}`+"\n", err.Error())
	}
	fmt.Println(`{"code":"ok","event":"shutdown"}`)
}

func hasTable(p *datalab.Platform, name string) bool {
	for _, t := range p.Tables() {
		if t == name {
			return true
		}
	}
	return false
}

// probe GETs a health URL and reports via exit status, printing the
// body line through.
func probe(url string) int {
	client := &http.Client{Timeout: 3 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, `{"code":"error","error":%q}`+"\n", err.Error())
		return 1
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return 1
	}
	return 0
}
