// Command datalab-server serves a datalab Platform over HTTP with the
// agent-first JSONL wire protocol (see docs/SERVER.md): per-session
// contexts over a shared catalog, server-side cursors, streamed query
// batches, streamed ingest, admission control with typed backpressure,
// and graceful cancellation when a client disconnects mid-stream.
//
// Operational output is JSONL on stdout — a startup line echoing the
// effective config (secrets redacted) followed by one ok/cancel/error
// event per request.
//
//	datalab-server -addr :8080 -demo-rows 100000
//
// The bearer token, when required, comes from the DATALAB_AUTH_TOKEN_SECRET
// environment variable (the _secret suffix is the redaction contract).
//
// `datalab-server -check http://localhost:8080/healthz` probes a running
// server and exits 0/1 — the Docker HEALTHCHECK hook for images that
// carry no shell or curl.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datalab"
	"datalab/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demoRows := flag.Int("demo-rows", 0, "register a demo `events` table with this many rows")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrently executing queries (0 = 2x GOMAXPROCS)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "how long an over-limit query queues before a typed backpressure rejection")
	sessionIdle := flag.Duration("session-idle", 15*time.Minute, "idle TTL after which sessions are swept")
	pageRows := flag.Int("page-rows", 4096, "default cursor page size in rows")
	check := flag.String("check", "", "health-probe mode: GET this URL, exit 0 on ok (Docker HEALTHCHECK)")
	flag.Parse()

	if *check != "" {
		os.Exit(probe(*check))
	}

	p := datalab.MustNew()
	if *demoRows > 0 {
		if err := server.LoadDemo(p, *demoRows); err != nil {
			fmt.Fprintf(os.Stderr, `{"code":"error","error":%q}`+"\n", err.Error())
			os.Exit(1)
		}
	}
	srv := server.New(p, server.Config{
		MaxConcurrentQueries: *maxConcurrent,
		QueueTimeout:         *queueTimeout,
		SessionIdleTimeout:   *sessionIdle,
		PageRows:             *pageRows,
		AuthTokenSecret:      os.Getenv("DATALAB_AUTH_TOKEN_SECRET"),
	}, os.Stdout)
	defer srv.Close()

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf(`{"code":"ok","event":"listening","addr":%q,"demo_rows":%d}`+"\n", *addr, *demoRows)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, `{"code":"error","error":%q}`+"\n", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, give in-flight streams a moment,
	// then cancel every session so the executors abort.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, `{"code":"error","event":"shutdown","error":%q}`+"\n", err.Error())
	}
	fmt.Println(`{"code":"ok","event":"shutdown"}`)
}

// probe GETs a health URL and reports via exit status, printing the
// body line through.
func probe(url string) int {
	client := &http.Client{Timeout: 3 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintf(os.Stderr, `{"code":"error","error":%q}`+"\n", err.Error())
		return 1
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return 1
	}
	return 0
}
