// Command docscheck verifies intra-repo markdown links: it walks every
// .md file under the root, extracts relative link targets, and fails when
// a target file does not exist. CI runs it in the docs job as a fast
// first gate, so architecture/engine/performance docs cannot drift into
// dead cross-references as files move between PRs.
//
// Usage:
//
//	docscheck [-root dir]
//
// External links (http, https, mailto) and pure in-page anchors (#...)
// are skipped; a fragment on a relative link is stripped before the
// existence check. Exit status is 1 when any link is broken, with one
// "file: target" line per break.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target); images ![...](...)
// share the suffix shape and are matched too.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	root := flag.String("root", ".", "repository root to scan")
	flag.Parse()
	broken, err := checkTree(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	for _, b := range broken {
		fmt.Println(b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s)\n", len(broken))
		os.Exit(1)
	}
}

// checkTree scans every .md file under root (skipping dot-directories)
// and returns one "file: target" entry per broken relative link.
func checkTree(root string) ([]string, error) {
	var broken []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip dot-directories (.git, caches) — but never the walk
			// root itself, whose own name may start with a dot (".", "..").
			if path != root && strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, target := range brokenLinks(filepath.Dir(path), string(data)) {
			broken = append(broken, fmt.Sprintf("%s: %s", path, target))
		}
		return nil
	})
	return broken, err
}

// brokenLinks returns the relative link targets in one document body that
// do not resolve to an existing file or directory relative to dir.
func brokenLinks(dir, body string) []string {
	var out []string
	for _, m := range linkRe.FindAllStringSubmatch(body, -1) {
		target := m[1]
		if skipTarget(target) {
			continue
		}
		if i := strings.IndexByte(target, '#'); i >= 0 {
			target = target[:i]
		}
		if target == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
			out = append(out, m[1])
		}
	}
	return out
}

// skipTarget reports link targets outside docscheck's scope: external
// URLs, mail links, and in-page anchors.
func skipTarget(t string) bool {
	return strings.HasPrefix(t, "http://") ||
		strings.HasPrefix(t, "https://") ||
		strings.HasPrefix(t, "mailto:") ||
		strings.HasPrefix(t, "#")
}
