package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, body string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBrokenLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "REAL.md"), "# real")
	body := "[ok](docs/REAL.md) [anchor](docs/REAL.md#section) [ext](https://example.com) " +
		"[mail](mailto:a@b.c) [page](#local) [dead](docs/MISSING.md) [img](missing.png)"
	got := brokenLinks(dir, body)
	want := []string{"docs/MISSING.md", "missing.png"}
	if len(got) != len(want) {
		t.Fatalf("broken = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("broken[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCheckTreeWalksAndResolvesRelative(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "README.md"), "[arch](docs/A.md)")
	write(t, filepath.Join(dir, "docs", "A.md"), "[back](../README.md) [gone](nope/B.md)")
	write(t, filepath.Join(dir, ".hidden", "SKIP.md"), "[never](checked.md)")
	broken, err := checkTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 {
		t.Fatalf("broken = %v, want exactly the docs/A.md nope/B.md entry", broken)
	}
}

func TestCheckTreeCleanRepo(t *testing.T) {
	// The real repository's docs must stay link-clean — this is the same
	// check the CI docs job runs, kept as a unit test so `go test ./...`
	// catches a dead link before CI does.
	broken, err := checkTree("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Errorf("repository has broken markdown links:\n%v", broken)
	}
}
