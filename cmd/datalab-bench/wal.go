package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"datalab"
)

// walSnapshot is the BENCH_wal.json schema: one record per workload,
// quantifying what durability costs the ingest hot path under each fsync
// policy against the memory-only baseline, plus how fast a crash recovery
// replays.
type walSnapshot struct {
	Workload        string  `json:"workload"`
	Rows            int     `json:"rows"`
	NsPerOp         float64 `json:"ns_per_op"`
	WALBytes        int64   `json:"wal_bytes"`
	SnapshotVersion uint64  `json:"snapshot_version"`
	ReplayMs        float64 `json:"replay_ms"`
}

// walIngest streams rows into a fresh `events` table on p, publishing
// every `batch` rows, and returns the per-row cost.
func walIngest(p *datalab.Platform, rows, batch int) (time.Duration, error) {
	if err := p.LoadRecords("events", []string{"id", "kind", "value"}, nil); err != nil {
		return 0, err
	}
	in, err := p.Ingest("events")
	if err != nil {
		return 0, err
	}
	kinds := []string{"view", "click", "buy"}
	start := time.Now()
	for i := 0; i < rows; i++ {
		if err := in.Append(
			fmt.Sprintf("%d", i),
			kinds[i%len(kinds)],
			fmt.Sprintf("%d.5", i%100),
		); err != nil {
			return 0, err
		}
		if i%batch == batch-1 {
			if _, err := in.PublishErr(); err != nil {
				return 0, err
			}
		}
	}
	if _, err := in.PublishErr(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// walBench measures the durable ingest path: the same append/publish
// workload against a memory-only platform and against the write-ahead log
// under each fsync policy, then a recovery replay of the durable state.
// Every workload cross-checks row visibility with a COUNT(*) probe, so the
// bench doubles as a correctness check. It writes BENCH_wal.json.
func walBench(rows int, outPath string) error {
	if rows < 10_000 {
		rows = 10_000
	}
	const batch = 1024
	var snaps []walSnapshot

	count := func(p *datalab.Platform) (int, error) {
		res, err := p.QueryCtx(context.Background(), "SELECT COUNT(*) FROM events")
		if err != nil {
			return 0, err
		}
		rs := res.Strings()
		if len(rs) != 1 || len(rs[0]) != 1 {
			return 0, fmt.Errorf("count probe returned %v", rs)
		}
		var n int
		fmt.Sscanf(rs[0][0], "%d", &n)
		return n, nil
	}

	// Baseline: the same workload with no WAL attached.
	mem := datalab.MustNew()
	elapsed, err := walIngest(mem, rows, batch)
	if err != nil {
		return err
	}
	if n, err := count(mem); err != nil || n != rows {
		return fmt.Errorf("memory baseline: count=%d err=%v, want %d", n, err, rows)
	}
	snaps = append(snaps, walSnapshot{
		Workload: "append_memory",
		Rows:     rows,
		NsPerOp:  float64(elapsed.Nanoseconds()) / float64(rows),
	})
	fmt.Printf("memory-only:     %d rows  (%v/row)\n", rows, elapsed/time.Duration(rows))

	// One durable run per fsync policy. The `always` directory is kept for
	// the recovery workload; the rest are discarded.
	tmp, err := os.MkdirTemp("", "datalab-bench-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	var alwaysDir string
	for _, policy := range []string{"always", "interval", "off"} {
		dir := filepath.Join(tmp, policy)
		p, err := datalab.OpenDurable(dir, datalab.DurabilityOptions{Fsync: policy})
		if err != nil {
			return err
		}
		elapsed, err := walIngest(p, rows, batch)
		if err != nil {
			p.Close()
			return err
		}
		if n, err := count(p); err != nil || n != rows {
			p.Close()
			return fmt.Errorf("fsync=%s: count=%d err=%v, want %d", policy, n, err, rows)
		}
		st := p.DurabilityStats()
		if err := p.Close(); err != nil {
			return err
		}
		snaps = append(snaps, walSnapshot{
			Workload:        "append_fsync_" + policy,
			Rows:            rows,
			NsPerOp:         float64(elapsed.Nanoseconds()) / float64(rows),
			WALBytes:        st.WALBytes,
			SnapshotVersion: st.SnapshotVersion,
		})
		fmt.Printf("fsync=%-8s  %d rows -> %d WAL bytes, version %d  (%v/row)\n",
			policy+":", rows, st.WALBytes, st.SnapshotVersion, elapsed/time.Duration(rows))
		if policy == "always" {
			alwaysDir = dir
		}
	}

	// Recovery replay: reopen the fsync=always directory and let the WAL
	// rebuild the catalog; the replay must surface every row.
	p, err := datalab.OpenDurable(alwaysDir, datalab.DurabilityOptions{})
	if err != nil {
		return err
	}
	defer p.Close()
	st := p.DurabilityStats()
	if st.RecoveredRows != int64(rows) {
		return fmt.Errorf("recovery replayed %d rows, want %d", st.RecoveredRows, rows)
	}
	if n, err := count(p); err != nil || n != rows {
		return fmt.Errorf("recovered count=%d err=%v, want %d", n, err, rows)
	}
	snaps = append(snaps, walSnapshot{
		Workload:        "recover_replay",
		Rows:            int(st.RecoveredRows),
		NsPerOp:         float64(st.ReplayDuration.Nanoseconds()) / float64(st.RecoveredRows),
		WALBytes:        st.WALBytes,
		SnapshotVersion: st.SnapshotVersion,
		ReplayMs:        float64(st.ReplayDuration.Microseconds()) / 1000,
	})
	fmt.Printf("recover:         %d rows replayed in %v  (%v/row)\n",
		st.RecoveredRows, st.ReplayDuration, st.ReplayDuration/time.Duration(st.RecoveredRows))

	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:        %s\n", outPath)
	return nil
}
