package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"datalab/internal/benchgen"
	"datalab/internal/notebook"
	"datalab/internal/sqlengine"
	"datalab/internal/table"
)

// macroSnapshot is the BENCH_macro.json schema: one record per generator
// workload, capturing how many synthesized statements executed through
// QueryCtx and at what per-query cost. The macro bench closes the loop
// between the paper-side workload generators (internal/benchgen) and the
// engine: every statement the generators emit must parse and execute, so
// the trajectory doubles as an end-to-end compatibility gate.
type macroSnapshot struct {
	Workload  string  `json:"workload"`
	Generator string  `json:"generator"`
	Tables    int     `json:"tables"`
	Queries   int     `json:"queries"`
	Rows      int     `json:"rows_returned"`
	NsPerOp   float64 `json:"ns_per_op"`
}

// bq backtick-quotes an identifier. Enterprise warehouse tables have
// digit-leading names (`20_business_tab_00`), which are legal identifiers
// only when quoted.
func bq(ident string) string { return "`" + ident + "`" }

// drain executes one statement through QueryCtx and returns the number of
// result rows it produced.
func drain(ctx context.Context, cat *sqlengine.Catalog, q string) (int, error) {
	res, err := cat.QueryCtx(ctx, q)
	if err != nil {
		return 0, fmt.Errorf("%w\n  in: %s", err, q)
	}
	rows := 0
	for b := res.Next(); b != nil; b = res.Next() {
		rows += b.NumRows()
	}
	return rows, nil
}

// enterpriseQueries synthesizes the rollup mix for one warehouse table
// from its schema alone (the bench sees the same cryptic surface an
// analyst would): a grouped rollup per string dimension, a ranking window
// over the leading measure, a searched-CASE banding, and a
// scalar-subquery filter against the table's own average.
func enterpriseQueries(et benchgen.EnterpriseTable) []string {
	var dims, nums []string
	for _, c := range et.Schema.Columns {
		switch c.Type {
		case "string":
			dims = append(dims, c.Name)
		case "double", "bigint":
			nums = append(nums, c.Name)
		}
	}
	if len(dims) == 0 || len(nums) == 0 {
		return nil
	}
	t, d, m := bq(et.Schema.Name), dims[0], nums[0]
	// Prefer a double measure for the banding threshold; measures are
	// synthesized in [100, 10000), so 5000 splits the population.
	for _, c := range et.Schema.Columns {
		if c.Type == "double" {
			m = c.Name
			break
		}
	}
	qs := []string{
		fmt.Sprintf("SELECT %s, COUNT(*) AS n, SUM(%s) FROM %s GROUP BY %s ORDER BY n DESC", d, m, t, d),
		fmt.Sprintf("SELECT %s, %s, RANK() OVER (PARTITION BY %s ORDER BY %s DESC) FROM %s", d, m, d, m, t),
		fmt.Sprintf("SELECT %s, CASE WHEN %s > 5000.0 THEN 'high' ELSE 'low' END FROM %s", d, m, t),
		fmt.Sprintf("SELECT %s FROM %s WHERE %s > (SELECT AVG(%s) FROM %s)", d, t, m, m, t),
	}
	if len(dims) > 1 {
		qs = append(qs, fmt.Sprintf(
			"SELECT %s, %s, SUM(%s) OVER (PARTITION BY %s ORDER BY %s) FROM %s",
			dims[1], d, m, dims[1], m, t))
	}
	return qs
}

// macroBench runs the three benchgen workload families end to end through
// QueryCtx — enterprise warehouse rollups over cryptic schemas, the
// research suites' gold SQL, and generated-notebook SQL cells — and
// writes BENCH_macro.json. Any statement a generator emits that the
// engine rejects fails the bench.
func macroBench(scale float64, seed, outPath string) error {
	ctx := context.Background()
	var snaps []macroSnapshot

	// Workload 1: enterprise rollups. One shared catalog of warehouse
	// tables; the query mix leans on the full SQL surface (windows, CASE,
	// subqueries) the way warehouse reporting scripts do.
	nTables := int(8 * scale)
	if nTables < 4 {
		nTables = 4
	}
	tables := benchgen.GenerateEnterprise(seed, nTables)
	cat := sqlengine.NewCatalog()
	for _, et := range tables {
		cat.Register(et.Data)
	}
	queries, rows := 0, 0
	start := time.Now()
	for _, et := range tables {
		for _, q := range enterpriseQueries(et) {
			n, err := drain(ctx, cat, q)
			if err != nil {
				return fmt.Errorf("enterprise %s: %w", et.Schema.Name, err)
			}
			queries++
			rows += n
		}
	}
	elapsed := time.Since(start)
	if queries < 4*nTables {
		return fmt.Errorf("enterprise workload synthesized only %d queries for %d tables", queries, nTables)
	}
	snaps = append(snaps, macroSnapshot{
		Workload: "enterprise_rollups", Generator: "enterprise",
		Tables: nTables, Queries: queries, Rows: rows,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(queries),
	})
	fmt.Printf("enterprise:      %d rollups over %d warehouse tables, %d rows  (%v/query)\n",
		queries, nTables, rows, elapsed/time.Duration(queries))

	// Workload 2: research-suite gold SQL. Every task ships an executable
	// gold query over its own synthesized table; all eight Table I suites
	// must run clean.
	suites := benchgen.Suites()
	queries, rows = 0, 0
	tasksTotal := 0
	start = time.Now()
	for _, s := range suites {
		n := int(float64(s.N) * scale)
		if n < 10 {
			n = 10
		}
		if n > s.N {
			n = s.N
		}
		s.N = n
		executed := 0
		for _, task := range benchgen.GenerateSuite(s, seed) {
			tasksTotal++
			if task.GoldSQL == "" {
				continue
			}
			tcat := sqlengine.NewCatalog()
			tcat.Register(task.Table)
			got, err := drain(ctx, tcat, task.GoldSQL)
			if err != nil {
				return fmt.Errorf("research %s: %w", task.ID, err)
			}
			queries++
			rows += got
			executed++
		}
		if executed == 0 {
			return fmt.Errorf("research suite %s produced no executable gold SQL", s.Name)
		}
	}
	elapsed = time.Since(start)
	snaps = append(snaps, macroSnapshot{
		Workload: "research_gold_sql", Generator: "research",
		Tables: tasksTotal, Queries: queries, Rows: rows,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(queries),
	})
	fmt.Printf("research:        %d/%d gold queries across %d suites, %d rows  (%v/query)\n",
		queries, tasksTotal, len(suites), rows, elapsed/time.Duration(queries))

	// Workload 3: notebook SQL cells. The generated notebook's extraction
	// cells run against seeded topic tables, then each topic gets the
	// window-refined extraction the notebook queries ask for ("refine the
	// %s extraction").
	nCells := int(140 * scale)
	if nCells < 28 {
		nCells = 28
	}
	gnb, err := benchgen.GenerateNotebook(seed, nCells)
	if err != nil {
		return fmt.Errorf("notebook generate: %w", err)
	}
	topics := []string{"sales", "orders", "traffic", "billing", "retention"}
	regions := []string{"east", "west", "north", "south"}
	ncat := sqlengine.NewCatalog()
	for ti, topic := range topics {
		t := table.MustNew(topic,
			[]string{"region", "amount"},
			[]table.Kind{table.KindString, table.KindFloat})
		for r := 0; r < 400; r++ {
			t.MustAppendRow(
				table.Str(regions[(r+ti)%len(regions)]),
				table.Float(float64((r*7919+ti*131)%20000)/100),
			)
		}
		ncat.Register(t)
	}
	queries, rows = 0, 0
	sqlCells := 0
	start = time.Now()
	for _, c := range gnb.Notebook.Cells() {
		if c.Type != notebook.CellSQL {
			continue
		}
		sqlCells++
		n, err := drain(ctx, ncat, c.Source)
		if err != nil {
			return fmt.Errorf("notebook cell %s: %w", c.ID, err)
		}
		queries++
		rows += n
	}
	for _, topic := range topics {
		q := fmt.Sprintf(
			"SELECT region, amount, ROW_NUMBER() OVER (PARTITION BY region ORDER BY amount DESC) AS rn FROM %s",
			topic)
		n, err := drain(ctx, ncat, q)
		if err != nil {
			return fmt.Errorf("notebook refinement %s: %w", topic, err)
		}
		queries++
		rows += n
	}
	elapsed = time.Since(start)
	if sqlCells < 2 {
		return fmt.Errorf("generated notebook carried only %d SQL cells", sqlCells)
	}
	snaps = append(snaps, macroSnapshot{
		Workload: "notebook_sql_cells", Generator: "notebook",
		Tables: len(topics), Queries: queries, Rows: rows,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(queries),
	})
	fmt.Printf("notebook:        %d SQL cells + %d refinements, %d rows  (%v/query)\n",
		sqlCells, len(topics), rows, elapsed/time.Duration(queries))

	// The snapshot must cover all three generators, each with work done.
	have := map[string]bool{}
	for _, s := range snaps {
		if s.Queries <= 0 || s.NsPerOp <= 0 {
			return fmt.Errorf("macro workload %s recorded no work", s.Workload)
		}
		have[s.Generator] = true
	}
	for _, g := range []string{"enterprise", "research", "notebook"} {
		if !have[g] {
			return fmt.Errorf("macro snapshot missing the %s generator", g)
		}
	}

	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:        %s\n", outPath)
	return nil
}
