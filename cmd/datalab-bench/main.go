// Command datalab-bench regenerates every table and figure from the
// paper's evaluation section against the synthetic workloads. Run with
// -scale to trade runtime for precision (1.0 = full workload sizes).
package main

import (
	"flag"
	"fmt"
	"os"

	"datalab/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "fraction of full workload sizes (0,1]")
	seed := flag.String("seed", "datalab-v1", "experiment seed")
	only := flag.String("only", "", "run a single experiment: table1|figure6|knowgen|table2|table3|figure7|table4")
	flag.Parse()

	run := func(name string) bool { return *only == "" || *only == name }

	if run("table1") {
		fmt.Println("== Table I: end-to-end performance on research benchmarks ==")
		for _, row := range experiments.Table1(*seed, *scale) {
			fmt.Println(row.Format())
		}
		fmt.Println()
	}
	if run("figure6") {
		fmt.Println("== Figure 6: DataLab under different underlying LLMs ==")
		for _, row := range experiments.Figure6(*seed, *scale) {
			fmt.Println(row.Format())
		}
		fmt.Println()
	}
	if run("knowgen") {
		fmt.Println("== §VII-C.1: knowledge generation quality ==")
		n := int(50 * *scale)
		if n < 5 {
			n = 5
		}
		fmt.Println(experiments.KnowledgeGeneration(*seed, n).Format())
		fmt.Println()
	}
	if run("table2") {
		fmt.Println("== Table II: domain knowledge incorporation ablation ==")
		nLink := int(439 * *scale)
		nDSL := int(326 * *scale)
		if nLink < 30 {
			nLink = 30
		}
		if nDSL < 30 {
			nDSL = 30
		}
		fmt.Println(experiments.Table2(*seed, 8, nLink, nDSL).Format())
		fmt.Println()
	}
	if run("table3") {
		fmt.Println("== Table III: inter-agent communication ablation ==")
		nQ := int(100 * *scale)
		if nQ < 20 {
			nQ = 20
		}
		fmt.Println(experiments.Table3(*seed, 6, nQ).Format())
		fmt.Println()
	}
	if run("figure7") {
		fmt.Println("== Figure 7: DAG construction time ==")
		points, err := experiments.Figure7(*seed, 49)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figure7:", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatFigure7(points))
		fmt.Println()
	}
	if run("table4") {
		fmt.Println("== Table IV: cell-based context management ablation ==")
		nNB := int(50 * *scale)
		if nNB < 10 {
			nNB = 10
		}
		res, err := experiments.Table4(*seed, nNB)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table4:", err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
	}
}
