// Command datalab-bench regenerates every table and figure from the
// paper's evaluation section against the synthetic workloads. Run with
// -scale to trade runtime for precision (1.0 = full workload sizes).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"datalab/internal/experiments"
	"datalab/internal/sqlengine"
	"datalab/internal/table"
)

func main() {
	scale := flag.Float64("scale", 1.0, "fraction of full workload sizes (0,1]")
	seed := flag.String("seed", "datalab-v1", "experiment seed")
	only := flag.String("only", "", "run a single experiment: table1|figure6|knowgen|table2|table3|figure7|table4|engine")
	flag.Parse()

	run := func(name string) bool { return *only == "" || *only == name }

	if run("table1") {
		fmt.Println("== Table I: end-to-end performance on research benchmarks ==")
		for _, row := range experiments.Table1(*seed, *scale) {
			fmt.Println(row.Format())
		}
		fmt.Println()
	}
	if run("figure6") {
		fmt.Println("== Figure 6: DataLab under different underlying LLMs ==")
		for _, row := range experiments.Figure6(*seed, *scale) {
			fmt.Println(row.Format())
		}
		fmt.Println()
	}
	if run("knowgen") {
		fmt.Println("== §VII-C.1: knowledge generation quality ==")
		n := int(50 * *scale)
		if n < 5 {
			n = 5
		}
		fmt.Println(experiments.KnowledgeGeneration(*seed, n).Format())
		fmt.Println()
	}
	if run("table2") {
		fmt.Println("== Table II: domain knowledge incorporation ablation ==")
		nLink := int(439 * *scale)
		nDSL := int(326 * *scale)
		if nLink < 30 {
			nLink = 30
		}
		if nDSL < 30 {
			nDSL = 30
		}
		fmt.Println(experiments.Table2(*seed, 8, nLink, nDSL).Format())
		fmt.Println()
	}
	if run("table3") {
		fmt.Println("== Table III: inter-agent communication ablation ==")
		nQ := int(100 * *scale)
		if nQ < 20 {
			nQ = 20
		}
		fmt.Println(experiments.Table3(*seed, 6, nQ).Format())
		fmt.Println()
	}
	if run("figure7") {
		fmt.Println("== Figure 7: DAG construction time ==")
		points, err := experiments.Figure7(*seed, 49)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figure7:", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatFigure7(points))
		fmt.Println()
	}
	if run("table4") {
		fmt.Println("== Table IV: cell-based context management ablation ==")
		nNB := int(50 * *scale)
		if nNB < 10 {
			nNB = 10
		}
		res, err := experiments.Table4(*seed, nNB)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table4:", err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
	}
	if run("engine") {
		fmt.Println("== Engine: typed result consumption & prepared statements ==")
		if err := engineDemo(int(100_000 * *scale)); err != nil {
			fmt.Fprintln(os.Stderr, "engine:", err)
			os.Exit(1)
		}
	}
}

// engineDemo contrasts the typed Result/Batch API against the legacy
// stringly materialization on one filtered scan, and shows a prepared
// statement amortizing parse cost across re-executions.
func engineDemo(rows int) error {
	if rows < 1000 {
		rows = 1000
	}
	t := table.MustNew("events",
		[]string{"id", "kind", "value"},
		[]table.Kind{table.KindInt, table.KindString, table.KindFloat})
	kinds := []string{"view", "click", "buy"}
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			table.Int(int64(i)),
			table.Str(kinds[i%len(kinds)]),
			table.Float(float64((i*7919)%10000)/100),
		)
	}
	cat := sqlengine.NewCatalog()
	cat.Register(t)
	ctx := context.Background()
	q := fmt.Sprintf("SELECT id, value FROM events WHERE id < %d", rows*9/10)

	start := time.Now()
	res, err := cat.QueryCtx(ctx, q)
	if err != nil {
		return err
	}
	var sum float64
	nbatches := 0
	for b := res.Next(); b != nil; b = res.Next() {
		nbatches++
		if fs, nulls, ok := b.Float64s(1); ok {
			for j, f := range fs {
				if !nulls[j] {
					sum += f
				}
			}
		}
	}
	typed := time.Since(start)
	fmt.Printf("typed batches:   %d rows in %d zero-copy batches, sum(value)=%.2f  (%v)\n",
		res.NumRows(), nbatches, sum, typed)

	// The legacy pipeline, end to end: execute into a materialized table,
	// then box and stringify every cell (what Platform.Query used to do).
	start = time.Now()
	tbl, err := cat.Query(q)
	if err != nil {
		return err
	}
	strRows := make([][]string, tbl.NumRows())
	for i := range strRows {
		row := make([]string, tbl.NumCols())
		for j, v := range tbl.Row(i) {
			row[j] = v.AsString()
		}
		strRows[i] = row
	}
	stringly := time.Since(start)
	fmt.Printf("legacy strings:  %d [][]string rows materialized            (%v, %.1fx slower)\n",
		len(strRows), stringly, float64(stringly)/float64(typed))

	stmt, err := cat.Prepare("SELECT kind, COUNT(*) AS n, SUM(value) FROM events GROUP BY kind ORDER BY n DESC")
	if err != nil {
		return err
	}
	const reps = 100
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := stmt.Exec(ctx); err != nil {
			return err
		}
	}
	perExec := time.Since(start) / reps
	hits, misses, size := cat.PlanCacheStats()
	fmt.Printf("prepared stmt:   %d executions, %v/exec, zero re-parses\n", reps, perExec)
	fmt.Printf("plan cache:      %d hits, %d misses, %d entries\n", hits, misses, size)
	return nil
}
