// Command datalab-bench regenerates every table and figure from the
// paper's evaluation section against the synthetic workloads. Run with
// -scale to trade runtime for precision (1.0 = full workload sizes).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"datalab/internal/experiments"
	"datalab/internal/sqlengine"
	"datalab/internal/table"
)

func main() {
	scale := flag.Float64("scale", 1.0, "fraction of full workload sizes (0,1]")
	seed := flag.String("seed", "datalab-v1", "experiment seed")
	only := flag.String("only", "", "run a single experiment: table1|figure6|knowgen|table2|table3|figure7|table4|engine|plancache|ingest|server|wal|macro")
	all := flag.Bool("all", false, "run every BENCH-emitting workload family (plancache, ingest, server, wal, macro) and write their snapshots")
	plancacheOut := flag.String("plancache-out", "BENCH_plancache.json", "output path for the plan-cache workload snapshot")
	ingestOut := flag.String("ingest-out", "BENCH_ingest.json", "output path for the streaming-ingest workload snapshot")
	serverOut := flag.String("server-out", "BENCH_server.json", "output path for the wire-protocol workload snapshot")
	walOut := flag.String("wal-out", "BENCH_wal.json", "output path for the durability workload snapshot")
	macroOut := flag.String("macro-out", "BENCH_macro.json", "output path for the generator macro-workload snapshot")
	flag.Parse()

	// benchFamilies are the workloads that persist BENCH_*.json snapshots;
	// -all runs exactly these (skipping the paper-table experiments).
	benchFamilies := map[string]bool{"plancache": true, "ingest": true, "server": true, "wal": true, "macro": true}
	run := func(name string) bool {
		if *all {
			return benchFamilies[name]
		}
		return *only == "" || *only == name
	}

	if run("table1") {
		fmt.Println("== Table I: end-to-end performance on research benchmarks ==")
		for _, row := range experiments.Table1(*seed, *scale) {
			fmt.Println(row.Format())
		}
		fmt.Println()
	}
	if run("figure6") {
		fmt.Println("== Figure 6: DataLab under different underlying LLMs ==")
		for _, row := range experiments.Figure6(*seed, *scale) {
			fmt.Println(row.Format())
		}
		fmt.Println()
	}
	if run("knowgen") {
		fmt.Println("== §VII-C.1: knowledge generation quality ==")
		n := int(50 * *scale)
		if n < 5 {
			n = 5
		}
		fmt.Println(experiments.KnowledgeGeneration(*seed, n).Format())
		fmt.Println()
	}
	if run("table2") {
		fmt.Println("== Table II: domain knowledge incorporation ablation ==")
		nLink := int(439 * *scale)
		nDSL := int(326 * *scale)
		if nLink < 30 {
			nLink = 30
		}
		if nDSL < 30 {
			nDSL = 30
		}
		fmt.Println(experiments.Table2(*seed, 8, nLink, nDSL).Format())
		fmt.Println()
	}
	if run("table3") {
		fmt.Println("== Table III: inter-agent communication ablation ==")
		nQ := int(100 * *scale)
		if nQ < 20 {
			nQ = 20
		}
		fmt.Println(experiments.Table3(*seed, 6, nQ).Format())
		fmt.Println()
	}
	if run("figure7") {
		fmt.Println("== Figure 7: DAG construction time ==")
		points, err := experiments.Figure7(*seed, 49)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figure7:", err)
			os.Exit(1)
		}
		fmt.Print(experiments.FormatFigure7(points))
		fmt.Println()
	}
	if run("table4") {
		fmt.Println("== Table IV: cell-based context management ablation ==")
		nNB := int(50 * *scale)
		if nNB < 10 {
			nNB = 10
		}
		res, err := experiments.Table4(*seed, nNB)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table4:", err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
	}
	if run("engine") {
		fmt.Println("== Engine: typed result consumption & prepared statements ==")
		if err := engineDemo(int(100_000 * *scale)); err != nil {
			fmt.Fprintln(os.Stderr, "engine:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if run("plancache") {
		fmt.Println("== Plan cache: fingerprint + bound-parameter workloads ==")
		if err := planCacheBench(int(100_000**scale), *plancacheOut); err != nil {
			fmt.Fprintln(os.Stderr, "plancache:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if run("ingest") {
		fmt.Println("== Streaming ingest: append/publish + query-during-ingest workloads ==")
		if err := ingestBench(int(500_000**scale), *ingestOut); err != nil {
			fmt.Fprintln(os.Stderr, "ingest:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if run("server") {
		fmt.Println("== Query server: HTTP + JSONL wire-protocol workloads ==")
		if err := serverBench(int(100_000**scale), *serverOut); err != nil {
			fmt.Fprintln(os.Stderr, "server:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if run("wal") {
		fmt.Println("== Durability: WAL fsync policies + crash-recovery replay ==")
		if err := walBench(int(100_000**scale), *walOut); err != nil {
			fmt.Fprintln(os.Stderr, "wal:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if run("macro") {
		fmt.Println("== Macro: benchgen workloads end to end through QueryCtx ==")
		if err := macroBench(*scale, *seed, *macroOut); err != nil {
			fmt.Fprintln(os.Stderr, "macro:", err)
			os.Exit(1)
		}
	}
}

// engineDemo contrasts the typed Result/Batch API against the legacy
// stringly materialization on one filtered scan, and shows a prepared
// statement amortizing parse cost across re-executions.
func engineDemo(rows int) error {
	if rows < 1000 {
		rows = 1000
	}
	t := table.MustNew("events",
		[]string{"id", "kind", "value"},
		[]table.Kind{table.KindInt, table.KindString, table.KindFloat})
	kinds := []string{"view", "click", "buy"}
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			table.Int(int64(i)),
			table.Str(kinds[i%len(kinds)]),
			table.Float(float64((i*7919)%10000)/100),
		)
	}
	cat := sqlengine.NewCatalog()
	cat.Register(t)
	ctx := context.Background()
	q := fmt.Sprintf("SELECT id, value FROM events WHERE id < %d", rows*9/10)

	start := time.Now()
	res, err := cat.QueryCtx(ctx, q)
	if err != nil {
		return err
	}
	var sum float64
	nbatches := 0
	for b := res.Next(); b != nil; b = res.Next() {
		nbatches++
		if fs, nulls, ok := b.Float64s(1); ok {
			for j, f := range fs {
				if !nulls[j] {
					sum += f
				}
			}
		}
	}
	typed := time.Since(start)
	fmt.Printf("typed batches:   %d rows in %d zero-copy batches, sum(value)=%.2f  (%v)\n",
		res.NumRows(), nbatches, sum, typed)

	// The legacy pipeline, end to end: execute into a materialized table,
	// then box and stringify every cell (what Platform.Query used to do).
	start = time.Now()
	tbl, err := cat.Query(q)
	if err != nil {
		return err
	}
	strRows := make([][]string, tbl.NumRows())
	for i := range strRows {
		row := make([]string, tbl.NumCols())
		for j, v := range tbl.Row(i) {
			row[j] = v.AsString()
		}
		strRows[i] = row
	}
	stringly := time.Since(start)
	fmt.Printf("legacy strings:  %d [][]string rows materialized            (%v, %.1fx slower)\n",
		len(strRows), stringly, float64(stringly)/float64(typed))

	stmt, err := cat.Prepare("SELECT kind, COUNT(*) AS n, SUM(value) FROM events GROUP BY kind ORDER BY n DESC")
	if err != nil {
		return err
	}
	const reps = 100
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := stmt.Exec(ctx); err != nil {
			return err
		}
	}
	perExec := time.Since(start) / reps
	st := cat.PlanCacheStats()
	fmt.Printf("prepared stmt:   %d executions, %v/exec, zero re-parses\n", reps, perExec)
	fmt.Printf("plan cache:      %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Size)
	return nil
}

// planCacheSnapshot is the BENCH_plancache.json schema: one record per
// workload, capturing throughput and plan-cache effectiveness so the
// perf trajectory is tracked as data, not prose.
type planCacheSnapshot struct {
	Workload   string  `json:"workload"`
	Queries    int     `json:"queries"`
	NsPerOp    float64 `json:"ns_per_op"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	HitRate    float64 `json:"hit_rate"`
	ParseCalls int64   `json:"parse_calls"`
}

// planCacheBench drives the literal-varying template workload the plan
// cache exists for: one SQL shape, thousands of distinct literals, issued
// both as inlined text (fingerprint path) and through Prepared.Exec with
// bound parameters. It writes BENCH_plancache.json and fails when the
// steady-state hit rate falls below 99%.
func planCacheBench(rows int, outPath string) error {
	if rows < 1000 {
		rows = 1000
	}
	t := table.MustNew("events",
		[]string{"id", "kind", "value"},
		[]table.Kind{table.KindInt, table.KindString, table.KindFloat})
	kinds := []string{"view", "click", "buy"}
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			table.Int(int64(i)),
			table.Str(kinds[i%len(kinds)]),
			table.Float(float64((i*7919)%10000)/100),
		)
	}
	cat := sqlengine.NewCatalog()
	cat.Register(t)
	ctx := context.Background()
	queries := rows / 10
	if queries < 1000 {
		queries = 1000
	}

	var snaps []planCacheSnapshot

	// Inlined literals: every text is distinct, but all normalize to one
	// template, so everything after the first query hits the cache.
	parse0 := sqlengine.ParseCalls()
	start := time.Now()
	for i := 0; i < queries; i++ {
		if _, err := cat.QueryCtx(ctx, fmt.Sprintf("SELECT COUNT(*) FROM events WHERE id < %d AND kind = '%s'", i%rows, kinds[i%len(kinds)])); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	st := cat.PlanCacheStats()
	snaps = append(snaps, planCacheSnapshot{
		Workload:   "query_inlined_literals",
		Queries:    queries,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(queries),
		Hits:       st.Hits,
		Misses:     st.Misses,
		HitRate:    st.HitRate(),
		ParseCalls: sqlengine.ParseCalls() - parse0,
	})
	fmt.Printf("fingerprinted:   %d distinct texts -> %d parse(s), hit rate %.4f  (%v/query)\n",
		queries, sqlengine.ParseCalls()-parse0, st.HitRate(), elapsed/time.Duration(queries))

	// Prepared + bound parameters: the explicit-placeholder fast path.
	stmt, err := cat.Prepare("SELECT COUNT(*) FROM events WHERE id < ? AND kind = ?")
	if err != nil {
		return err
	}
	parse1 := sqlengine.ParseCalls()
	start = time.Now()
	for i := 0; i < queries; i++ {
		if _, err := stmt.Exec(ctx, i%rows, kinds[i%len(kinds)]); err != nil {
			return err
		}
	}
	elapsed = time.Since(start)
	st2 := cat.PlanCacheStats()
	snaps = append(snaps, planCacheSnapshot{
		Workload:   "prepared_bound_params",
		Queries:    queries,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(queries),
		Hits:       st2.Hits - st.Hits,
		Misses:     st2.Misses - st.Misses,
		HitRate:    1, // Exec never consults the cache: the plan is pinned
		ParseCalls: sqlengine.ParseCalls() - parse1,
	})
	fmt.Printf("prepared+bind:   %d executions -> %d re-parse(s)  (%v/query)\n",
		queries, sqlengine.ParseCalls()-parse1, elapsed/time.Duration(queries))

	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:        %s\n", outPath)

	if hr := snaps[0].HitRate; hr < 0.99 {
		return fmt.Errorf("plan-cache hit rate %.4f below the 0.99 floor on the template workload", hr)
	}
	return nil
}

// ingestSnapshot is the BENCH_ingest.json schema: one record per workload,
// capturing append throughput and reader latency under live ingest.
type ingestSnapshot struct {
	Workload  string  `json:"workload"`
	Rows      int     `json:"rows"`
	Queries   int     `json:"queries"`
	NsPerOp   float64 `json:"ns_per_op"`
	Snapshots uint64  `json:"snapshots_published"`
	Chunks    int     `json:"chunks"`
}

// countSum runs `SELECT COUNT(*), SUM(v) FROM stream` and returns both.
func countSum(cat *sqlengine.Catalog) (int64, float64, error) {
	res, err := cat.QueryCtx(context.Background(), "SELECT COUNT(*), SUM(v) FROM stream")
	if err != nil {
		return 0, 0, err
	}
	b := res.Next()
	if b == nil || b.NumRows() == 0 {
		return 0, 0, fmt.Errorf("empty aggregate result")
	}
	cnt, _ := b.Int64(0, 0)
	sum, _ := b.Float64(1, 0)
	return cnt, sum, nil
}

// ingestBench drives the streaming-ingest substrate: the append/publish
// writer hot path, then reader queries racing a live background ingester.
// Every observed result must be internally consistent with exactly one
// published snapshot (counts land on batch boundaries, sums match the
// closed form), so the bench doubles as a correctness check. It writes
// BENCH_ingest.json.
func ingestBench(rows int, outPath string) error {
	if rows < 10_000 {
		rows = 10_000
	}
	const batch = 1024
	cat := sqlengine.NewCatalog()
	cat.Register(table.MustNew("stream",
		[]string{"v", "p"}, []table.Kind{table.KindInt, table.KindInt}))
	app, _ := cat.Appender("stream")

	// Workload 1: the writer hot path — stage rows, publish per batch.
	start := time.Now()
	for i := 0; i < rows; i++ {
		if err := app.Append([]table.Value{table.Int(int64(i)), table.Int(int64(i & 1))}); err != nil {
			return err
		}
		if i%batch == batch-1 {
			app.Publish()
		}
	}
	snap := app.Publish()
	elapsed := time.Since(start)
	cnt, sum, err := countSum(cat)
	if err != nil {
		return err
	}
	if cnt != int64(rows) || sum != float64(rows)*float64(rows-1)/2 {
		return fmt.Errorf("post-ingest aggregate mismatch: count=%d sum=%.0f for %d rows", cnt, sum, rows)
	}
	snaps := []ingestSnapshot{{
		Workload:  "append_publish",
		Rows:      rows,
		NsPerOp:   float64(elapsed.Nanoseconds()) / float64(rows),
		Snapshots: snap.Version(),
		Chunks:    snap.NumChunks(),
	}}
	fmt.Printf("append+publish:  %d rows -> %d chunks across %d snapshots  (%v/row)\n",
		rows, snap.NumChunks(), snap.Version(), elapsed/time.Duration(rows))

	// Workload 2: readers racing a live ingester. The single writer only
	// publishes at batch boundaries past the phase-1 baseline, so every
	// consistent snapshot has a row count of baseline + k*batch and a sum
	// matching the closed form — anything else means a reader saw a blend.
	queries := rows / 100
	if queries < 100 {
		queries = 100
	}
	// The ingester streams one more `rows` worth of data (in batch-sized
	// publishes) and stops — bounding the table at 2x so reader latency
	// stays comparable across the run — or earlier if the readers finish.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := rows; i < 2*rows; {
			select {
			case <-stop:
				return
			default:
			}
			for k := 0; k < batch; k++ {
				_ = app.Append([]table.Value{table.Int(int64(i)), table.Int(int64(i & 1))})
				i++
			}
			app.Publish()
		}
	}()
	start = time.Now()
	for q := 0; q < queries; q++ {
		cnt, sum, err := countSum(cat)
		if err != nil {
			return err
		}
		if cnt < int64(rows) || (cnt-int64(rows))%batch != 0 {
			return fmt.Errorf("query %d observed a torn snapshot: count=%d not baseline+k*%d", q, cnt, batch)
		}
		if want := float64(cnt) * float64(cnt-1) / 2; sum != want {
			return fmt.Errorf("query %d observed an inconsistent snapshot: count=%d sum=%.0f want %.0f", q, cnt, sum, want)
		}
	}
	elapsed = time.Since(start)
	close(stop)
	<-done
	final := app.Snapshot()
	snaps = append(snaps, ingestSnapshot{
		Workload:  "query_during_ingest",
		Rows:      final.NumRows() - rows,
		Queries:   queries,
		NsPerOp:   float64(elapsed.Nanoseconds()) / float64(queries),
		Snapshots: final.Version(),
		Chunks:    final.NumChunks(),
	})
	fmt.Printf("query+ingest:    %d consistent reads while %d rows streamed in  (%v/query)\n",
		queries, final.NumRows()-rows, elapsed/time.Duration(queries))

	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:        %s\n", outPath)
	return nil
}
