package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"datalab"
	"datalab/internal/server"
)

// serverSnapshot is the BENCH_server.json schema: one record per wire
// workload, capturing end-to-end throughput through the full HTTP + JSONL
// stack (admission, session, execution, serialization).
type serverSnapshot struct {
	Workload   string  `json:"workload"`
	Rows       int     `json:"rows"`
	Queries    int     `json:"queries"`
	NsPerOp    float64 `json:"ns_per_op"`
	JSONLLines int     `json:"jsonl_lines"`
	WireBytes  int64   `json:"wire_bytes"`
}

// countingReader tallies wire bytes as JSONL lines are decoded off it.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// drainValidated decodes a JSONL response, checks every line carries a
// known code, and returns (lines, wire bytes). Doubles as a protocol
// conformance check: the bench fails on any malformed line.
func drainValidated(resp *http.Response) (int, int64, error) {
	defer resp.Body.Close()
	cr := &countingReader{r: resp.Body}
	dec := json.NewDecoder(cr)
	lines := 0
	for {
		var l map[string]any
		if err := dec.Decode(&l); err == io.EOF {
			break
		} else if err != nil {
			return lines, cr.n, fmt.Errorf("malformed JSONL line %d: %w", lines+1, err)
		}
		switch l["code"] {
		case server.CodeStartup, server.CodeProgress, server.CodeOK:
		case server.CodeError:
			return lines, cr.n, fmt.Errorf("server error line: %v", l["error"])
		default:
			return lines, cr.n, fmt.Errorf("unknown code %v in line %d", l["code"], lines+1)
		}
		lines++
	}
	return lines, cr.n, nil
}

// serverBench drives the wire-protocol workloads end to end against an
// in-process HTTP server: full-table query streaming, small aggregate
// round trips, streamed JSONL ingest, and cursor pagination. It writes
// BENCH_server.json and fails on any protocol violation.
func serverBench(rows int, outPath string) error {
	if rows < 10_000 {
		rows = 10_000
	}
	p := datalab.MustNew(datalab.WithSeed("bench-server"))
	if err := server.LoadDemo(p, rows); err != nil {
		return err
	}
	srv := server.New(p, server.Config{}, io.Discard)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var snaps []serverSnapshot
	post := func(path string, v any) (*http.Response, error) {
		data, _ := json.Marshal(v)
		return http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	}

	// Workload 1: stream the whole table — serialization-bound.
	const streamReps = 5
	lines, wire := 0, int64(0)
	start := time.Now()
	for i := 0; i < streamReps; i++ {
		resp, err := post("/v1/query", map[string]any{"sql": "SELECT id, kind, value FROM events"})
		if err != nil {
			return err
		}
		n, b, err := drainValidated(resp)
		if err != nil {
			return fmt.Errorf("query_stream: %w", err)
		}
		lines += n
		wire += b
	}
	elapsed := time.Since(start)
	snaps = append(snaps, serverSnapshot{
		Workload: "query_stream", Rows: rows, Queries: streamReps,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(streamReps),
		JSONLLines: lines, WireBytes: wire,
	})
	fmt.Printf("query stream:    %d rows x%d -> %d JSONL lines, %.1f MB wire  (%v/query)\n",
		rows, streamReps, lines, float64(wire)/1e6, elapsed/streamReps)

	// Workload 2: tiny aggregate round trips — per-request overhead.
	aggReps := 200
	lines, wire = 0, 0
	start = time.Now()
	for i := 0; i < aggReps; i++ {
		resp, err := post("/v1/query", map[string]any{
			"sql":  "SELECT COUNT(*) FROM events WHERE id < ?",
			"args": []any{i * (rows / aggReps)},
		})
		if err != nil {
			return err
		}
		n, b, err := drainValidated(resp)
		if err != nil {
			return fmt.Errorf("query_roundtrip: %w", err)
		}
		lines += n
		wire += b
	}
	elapsed = time.Since(start)
	snaps = append(snaps, serverSnapshot{
		Workload: "query_roundtrip", Rows: rows, Queries: aggReps,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(aggReps),
		JSONLLines: lines, WireBytes: wire,
	})
	fmt.Printf("query roundtrip: %d bound-arg aggregates  (%v/query)\n", aggReps, elapsed/time.Duration(aggReps))

	// Workload 3: streamed JSONL ingest over the wire.
	ingestRows := rows / 5
	var body bytes.Buffer
	for i := 0; i < ingestRows; i++ {
		fmt.Fprintf(&body, "[%d, \"wire\", %d.5]\n", rows+i, i%100)
	}
	wireIn := int64(body.Len())
	start = time.Now()
	resp, err := http.Post(ts.URL+"/v1/ingest/events", "application/x-ndjson", &body)
	if err != nil {
		return err
	}
	lines, _, err = drainValidated(resp)
	if err != nil {
		return fmt.Errorf("ingest_stream: %w", err)
	}
	elapsed = time.Since(start)
	snaps = append(snaps, serverSnapshot{
		Workload: "ingest_stream", Rows: ingestRows, Queries: 1,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(ingestRows),
		JSONLLines: lines, WireBytes: wireIn,
	})
	fmt.Printf("ingest stream:   %d rows over the wire  (%v/row)\n", ingestRows, elapsed/time.Duration(ingestRows))

	// Workload 4: cursor pagination — page through the table twice via
	// one rewindable server-side cursor.
	resp, err = post("/v1/cursors", map[string]any{"sql": "SELECT id, value FROM events"})
	if err != nil {
		return err
	}
	var created struct {
		CursorID string `json:"cursor_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	pages, pageLines, pageWire := 0, 0, int64(0)
	start = time.Now()
	for pass := 0; pass < 2; pass++ {
		for {
			r, err := http.Post(ts.URL+"/v1/cursors/"+created.CursorID+"/next?max_rows=4096", "", nil)
			if err != nil {
				return err
			}
			cr := &countingReader{r: r.Body}
			var page struct {
				Code string `json:"code"`
				Done bool   `json:"cursor_done"`
			}
			err = json.NewDecoder(cr).Decode(&page)
			io.Copy(io.Discard, cr)
			r.Body.Close()
			if err != nil || page.Code != server.CodeOK {
				return fmt.Errorf("cursor_page: page %d code=%q err=%v", pages+1, page.Code, err)
			}
			pages++
			pageLines++
			pageWire += cr.n
			if page.Done {
				break
			}
		}
		if pass == 0 {
			r, err := http.Post(ts.URL+"/v1/cursors/"+created.CursorID+"/rewind", "", nil)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
	}
	elapsed = time.Since(start)
	snaps = append(snaps, serverSnapshot{
		Workload: "cursor_page", Rows: 2 * rows, Queries: pages,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(pages),
		JSONLLines: pageLines, WireBytes: pageWire,
	})
	fmt.Printf("cursor pages:    %d pages over two passes (rewind between)  (%v/page)\n",
		pages, elapsed/time.Duration(pages))

	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot:        %s\n", outPath)
	return nil
}
