package datalab

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"datalab/internal/agent"
	"datalab/internal/comm"
	"datalab/internal/knowledge"
	"datalab/internal/llm"
	"datalab/internal/sqlengine"
	"datalab/internal/table"
	"datalab/internal/wal"
)

// Option configures a Platform.
type Option func(*config)

type config struct {
	model string
	seed  string
}

// WithModel selects the underlying model profile: "gpt-4" (default),
// "qwen-2.5", or "llama-3.1".
func WithModel(name string) Option {
	return func(c *config) { c.model = name }
}

// WithSeed fixes the deterministic seed for the simulated model.
func WithSeed(seed string) Option {
	return func(c *config) { c.seed = seed }
}

// Platform is one DataLab deployment: catalog + knowledge + agents.
//
// A Platform is safe for concurrent use: Ask and Query may be called from
// many goroutines at once (the catalog serializes registrations against
// readers, and the SQL engine runs scan/aggregate partitions on a bounded
// worker pool shared across queries). LearnKnowledge and AddGlossary are
// safe mid-traffic too: knowledge updates are copy-on-write — each call
// clones the knowledge graph, mutates the clone, and publishes it with a
// new runtime under the platform mutex, while an Ask already in flight
// keeps reading the immutable snapshot its runtime captured.
type Platform struct {
	client  *llm.Client
	catalog *sqlengine.Catalog

	// wal and recovered are set only by OpenDurable: the write-ahead
	// log backing the catalog, and what boot-time recovery rebuilt.
	wal       *wal.Manager
	recovered *wal.Recovered

	mu      sync.RWMutex // guards graph, rt, history
	graph   *knowledge.Graph
	rt      *agent.Runtime
	history []string
}

// New creates a platform.
func New(opts ...Option) (*Platform, error) {
	cfg := config{model: "gpt-4", seed: "datalab"}
	for _, o := range opts {
		o(&cfg)
	}
	profile, err := llm.ProfileByName(cfg.model)
	if err != nil {
		return nil, err
	}
	client := llm.NewClient(profile, cfg.seed)
	catalog := sqlengine.NewCatalog()
	return &Platform{
		client:  client,
		catalog: catalog,
		rt:      agent.NewRuntime(client, catalog),
	}, nil
}

// MustNew is New that panics on error, for examples and tests.
func MustNew(opts ...Option) *Platform {
	p, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// LoadCSV registers a CSV dataset under the given table name.
func (p *Platform) LoadCSV(name string, r io.Reader) error {
	t, err := table.ReadCSV(name, r)
	if err != nil {
		return err
	}
	return p.catalog.RegisterErr(t)
}

// LoadRecords registers an in-memory dataset: a header row plus string
// records; column types are inferred.
func (p *Platform) LoadRecords(name string, columns []string, rows [][]string) error {
	kinds := make([]table.Kind, len(columns))
	for i := range kinds {
		kinds[i] = table.KindString
	}
	// Infer kinds from the first non-empty cell per column.
	for c := range columns {
		for _, row := range rows {
			if c < len(row) && strings.TrimSpace(row[c]) != "" {
				kinds[c] = table.Infer(row[c]).Kind
				break
			}
		}
	}
	t, err := table.New(name, columns, kinds)
	if err != nil {
		return err
	}
	for _, row := range rows {
		vals := make([]table.Value, len(columns))
		for c := range columns {
			if c < len(row) {
				vals[c] = table.Infer(row[c])
			}
		}
		if err := t.AppendRow(vals...); err != nil {
			return err
		}
	}
	return p.catalog.RegisterErr(t)
}

// AppendRecords appends string records to an already-registered table and
// publishes one new snapshot covering all of them. Cells are type-inferred
// and then coerced to the table's column kinds. Queries already running
// keep reading the snapshot they started on; queries issued after
// AppendRecords returns see every appended row.
func (p *Platform) AppendRecords(name string, rows [][]string) error {
	in, err := p.Ingest(name)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if err := in.Append(row...); err != nil {
			return err
		}
	}
	_, err = in.PublishErr()
	return err
}

// Ingestor is a streaming append handle for one registered table. Appended
// rows are batched into a pending chunk that no query can observe until
// Publish atomically swaps in a snapshot that includes them — so a burst
// of appends becomes one visible version, not many. An Ingestor is safe
// for concurrent use with queries; concurrent Appends on the same table
// serialize on the table's appender.
type Ingestor struct {
	app *table.Appender
}

// Ingest returns a streaming append handle for a registered table.
func (p *Platform) Ingest(name string) (*Ingestor, error) {
	app, ok := p.catalog.Appender(name)
	if !ok {
		return nil, fmt.Errorf("datalab: unknown table %q", name)
	}
	return &Ingestor{app: app}, nil
}

// Append stages one row from string cells; types are inferred per cell and
// coerced to the table's schema. The row is invisible until Publish.
func (in *Ingestor) Append(cells ...string) error {
	vals := make([]table.Value, len(in.app.Kinds()))
	for c := range vals {
		if c < len(cells) {
			vals[c] = table.Infer(cells[c])
		}
	}
	return in.app.Append(vals)
}

// Pending reports how many staged rows await Publish.
func (in *Ingestor) Pending() int { return in.app.Pending() }

// Publish seals the staged rows into a new immutable chunk and atomically
// publishes the snapshot that includes them, returning the total row count
// now visible to new queries. On a durable platform a log failure leaves
// the rows staged; use PublishErr to observe it.
func (in *Ingestor) Publish() int { return in.app.Publish().NumRows() }

// PublishErr is Publish with the durability error surfaced: on a durable
// platform the staged chunk is journaled and (under the "always" policy)
// fsynced before any query can observe it, and a log failure keeps the
// rows staged and invisible rather than half-applying them.
func (in *Ingestor) PublishErr() (int, error) {
	s, err := in.app.PublishErr()
	return s.NumRows(), err
}

// Tables lists registered table names.
func (p *Platform) Tables() []string { return p.catalog.TableNames() }

// ColumnSchema describes one column of an enterprise table.
type ColumnSchema struct {
	Name    string
	Type    string // bigint, double, string, date, ...
	Comment string
}

// Script is one historical data-processing script ("sql" or "python").
type Script struct {
	ID       string
	Language string
	Text     string
}

// Glossary is one enterprise jargon entry.
type Glossary struct {
	Term         string
	Definition   string
	Aliases      []string
	MapsToColumn string
	MapsToTable  string
}

// LearnKnowledge runs the Domain Knowledge Incorporation pipeline
// (Algorithm 1) over a table's schema and script history, loading the
// generated knowledge into the platform's graph. Call once per table;
// glossaries may be added with AddGlossary.
func (p *Platform) LearnKnowledge(database, tableName string, columns []ColumnSchema, scripts []Script) error {
	schema := knowledge.TableSchema{Database: database, Name: tableName}
	for _, c := range columns {
		schema.Columns = append(schema.Columns, knowledge.ColumnSchema{
			Name: c.Name, Type: c.Type, Comment: c.Comment,
		})
	}
	var hist []knowledge.Script
	for _, s := range scripts {
		hist = append(hist, knowledge.Script{
			ID:       s.ID,
			Language: knowledge.ScriptLanguage(strings.ToLower(s.Language)),
			Text:     s.Text,
		})
	}
	gen := knowledge.NewGenerator(p.client)
	bundle, err := gen.Generate(schema, hist, nil)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	graph := p.cloneGraphLocked()
	graph.AddBundle(bundle, knowledge.LevelFull)
	p.swapGraphLocked(graph)
	p.rt.Ambiguity = 0.3
	return nil
}

// AddGlossary registers enterprise jargon in the knowledge graph.
func (p *Platform) AddGlossary(entries ...Glossary) {
	p.mu.Lock()
	defer p.mu.Unlock()
	graph := p.cloneGraphLocked()
	for _, g := range entries {
		graph.AddJargon(knowledge.JargonEntry{
			Term:         g.Term,
			Definition:   g.Definition,
			Aliases:      g.Aliases,
			MapsToColumn: g.MapsToColumn,
			MapsToTable:  g.MapsToTable,
		})
	}
	p.swapGraphLocked(graph)
}

// cloneGraphLocked returns a private copy of the current knowledge graph
// for a writer to mutate. Knowledge updates are copy-on-write: an Ask in
// flight snapshots p.rt (and through it the graph) under RLock and keeps
// reading that immutable snapshot, while the writer mutates only its clone
// and then publishes it with swapGraphLocked. Callers hold p.mu.
func (p *Platform) cloneGraphLocked() *knowledge.Graph {
	if p.graph == nil {
		return knowledge.NewGraph()
	}
	return p.graph.Clone()
}

// swapGraphLocked publishes a new graph snapshot and the runtime built
// over it, carrying forward the previous runtime's ambiguity setting
// (LearnKnowledge raises it separately). Callers hold p.mu.
func (p *Platform) swapGraphLocked(graph *knowledge.Graph) {
	rt := agent.NewRuntime(p.client, p.catalog).WithGraph(graph, knowledge.LevelFull)
	if p.rt != nil {
		rt.Ambiguity = p.rt.Ambiguity
	}
	p.graph = graph
	p.rt = rt
}

// Answer is the result of one NL query: whatever the plan's agents
// produced, in consumable form.
type Answer struct {
	// SQL is the executed query (empty if no SQL agent ran).
	SQL string
	// Result is the typed, batch-iterable columnar result of SQL — the
	// primary way to consume the result set. It is nil when no SQL ran or
	// when executing it failed (see Err).
	Result *Result
	// Err records the execution error of the generated SQL, if any. Ask
	// itself still returns nil in this case: the plan ran, the answer's
	// other units (insights, charts) may be valid, and the SQL failure is
	// part of the answer rather than a failure to answer.
	Err error
	// Columns carries the SQL result's column names.
	Columns []string
	// Rows is the stringly materialization of the result set.
	//
	// Deprecated: Rows boxes and stringifies every cell. Use the typed
	// surface instead — iterate Answer.Result (or Platform.QueryCtx)
	// batches with the typed accessors. Rows remains populated for
	// compatibility.
	Rows [][]string
	// ChartJSON is the Vega-Lite-style chart spec, when a chart was asked.
	ChartJSON string
	// Insights carries analysis-agent findings (anomalies, associations,
	// forecasts) as prose.
	Insights []string
	// Report is the final composed report, when one was requested.
	Report string
	// AgentTrace lists the agents that ran, in execution order.
	AgentTrace []string
}

// Ask answers a natural-language query against a registered table by
// planning a multi-agent execution (§V) and running it through the proxy.
func (p *Platform) Ask(query, tableName string) (*Answer, error) {
	if _, ok := p.catalog.Table(tableName); !ok {
		return nil, fmt.Errorf("datalab: unknown table %q", tableName)
	}
	p.mu.RLock()
	rt := p.rt
	p.mu.RUnlock()
	planner := agent.NewPlanner(rt)
	plan, agents := planner.Plan(query, tableName)
	proxy := comm.NewProxy(comm.DefaultProxyConfig())
	units, _, err := proxy.Run(plan, agents, query)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.history = append(p.history, query)
	p.mu.Unlock()

	ans := &Answer{}
	for _, u := range units {
		ans.AgentTrace = append(ans.AgentTrace, u.Role)
		switch u.Kind {
		case comm.KindSQL:
			ans.SQL = sqlFromContent(u.Content)
			p.fillRows(ans)
		case comm.KindChart:
			ans.ChartJSON = u.Content
		case comm.KindText:
			if u.Role == agent.NameReport {
				ans.Report = u.Content
			} else {
				ans.Insights = append(ans.Insights, u.Content)
			}
		}
	}
	return ans, nil
}

// QueryCtx executes raw SQL against the catalog (the SQL-cell path) and
// returns a typed, batch-iterable Result. The text is fingerprinted
// first — literals are extracted and the plan cache is keyed by the
// resulting template — so structurally identical queries that differ only
// in their literal values parse once and share one cached plan. ctx
// cancels mid-scan between worker-pool chunks.
func (p *Platform) QueryCtx(ctx context.Context, sql string) (*Result, error) {
	return p.catalog.QueryCtx(ctx, sql)
}

// Prepare parses sql once and returns a reusable statement handle; Exec
// never re-parses. The text may declare `?` or `:name` placeholders bound
// per execution (see Stmt). Table names bind at execute time, so a
// prepared statement observes later LoadCSV/LoadRecords registrations.
func (p *Platform) Prepare(sql string) (*Stmt, error) {
	return p.catalog.Prepare(sql)
}

// PlanCacheStats snapshots the catalog's plan-cache counters — hit/miss
// accounting, evictions, and how many lookups went through the query
// fingerprinter. A hit rate near 1.0 on steady-state traffic means the
// workload's templates fit the cache and parsing has been amortized away.
func (p *Platform) PlanCacheStats() PlanCacheStats {
	return p.catalog.PlanCacheStats()
}

// Query executes raw SQL and materializes the full result as strings.
//
// Deprecated: Query stringifies every cell of every row. Use
// Platform.QueryCtx and iterate the Result's batches with the typed
// accessors; this shim remains for callers that want the old shape.
func (p *Platform) Query(sql string) (columns []string, rows [][]string, err error) {
	res, err := p.catalog.QueryCtx(context.Background(), sql)
	if err != nil {
		return nil, nil, err
	}
	return res.Columns(), res.Strings(), nil
}

// fillRows executes the answer's SQL and attaches the typed Result plus
// the deprecated stringly projection. Execution failures land in
// Answer.Err instead of being silently swallowed.
func (p *Platform) fillRows(ans *Answer) {
	if ans.SQL == "" {
		return
	}
	res, err := p.catalog.QueryCtx(context.Background(), ans.SQL)
	if err != nil {
		ans.Err = fmt.Errorf("datalab: executing generated SQL: %w", err)
		return
	}
	ans.Result = res
	ans.Columns = res.Columns()
	ans.Rows = res.Strings()
}

// sqlFromContent extracts the SQL statement from a SQL agent's unit. The
// unit content is the statement followed by a "-- dsl:" annotation line
// and a result preview; cutting at that marker — rather than at the first
// newline, which mangled multi-line statements — keeps the whole query.
func sqlFromContent(s string) string {
	if i := strings.Index(s, "\n-- dsl:"); i >= 0 {
		return s[:i]
	}
	return strings.TrimRight(s, "\n")
}

// TokenUsage reports the platform's accumulated simulated token spend.
func (p *Platform) TokenUsage() (prompt, completion, calls int) {
	u := p.client.Usage()
	return u.PromptTokens, u.CompletionTokens, u.Calls
}
