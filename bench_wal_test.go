package datalab

// Durability benchmarks, tracked by the CI bench gate under the WAL and
// Recover families. BenchmarkWALAppend* is the same writer hot path as
// BenchmarkAppend with a write-ahead log attached under each fsync policy —
// the delta against BenchmarkAppend is the durability tax, and the gate
// holds the `interval` and `off` policies within its regression budget.
// BenchmarkWALRecoverReplay measures the boot-time log replay. Run:
//
//	go test -run xxx -bench='WAL|Recover' -benchmem

import (
	"testing"

	"datalab/internal/table"
	"datalab/internal/wal"
)

// benchWALAppend is BenchmarkAppend's loop with rows journaled through a
// Manager. Checkpointing is disabled so every iteration pays the log write,
// not an occasional snapshot serialization.
func benchWALAppend(b *testing.B, policy wal.Policy) {
	dir := b.TempDir()
	m, _, err := wal.Open(dir, wal.Options{Fsync: policy, CheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	fresh := func() *table.Appender {
		app := table.NewAppender(table.MustNew("stream",
			[]string{"v", "p"}, []table.Kind{table.KindInt, table.KindInt}))
		if err := m.Track(app); err != nil {
			b.Fatal(err)
		}
		return app
	}
	app := fresh()
	row := []table.Value{table.Int(0), table.Int(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row[0], row[1] = table.Int(int64(i)), table.Int(int64(i&1))
		if err := app.Append(row); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			if _, err := app.PublishErr(); err != nil {
				b.Fatal(err)
			}
		}
		// Bound arena growth on long runs by starting a fresh table.
		if i%(1<<21) == (1<<21)-1 {
			b.StopTimer()
			app = fresh()
			b.StartTimer()
		}
	}
	if _, err := app.PublishErr(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkWALAppendAlways(b *testing.B)   { benchWALAppend(b, wal.PolicyAlways) }
func BenchmarkWALAppendInterval(b *testing.B) { benchWALAppend(b, wal.PolicyInterval) }
func BenchmarkWALAppendOff(b *testing.B)      { benchWALAppend(b, wal.PolicyOff) }

// BenchmarkWALRecoverReplay measures wal.Recover over a fixed 64k-row log:
// the boot-time cost of rebuilding the catalog from the journal alone (no
// checkpoint shortcut).
func BenchmarkWALRecoverReplay(b *testing.B) {
	const rows = 1 << 16
	dir := b.TempDir()
	m, _, err := wal.Open(dir, wal.Options{Fsync: wal.PolicyOff, CheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	app := table.NewAppender(table.MustNew("stream",
		[]string{"v", "p"}, []table.Kind{table.KindInt, table.KindInt}))
	if err := m.Track(app); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := app.Append([]table.Value{table.Int(int64(i)), table.Int(int64(i & 1))}); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			if _, err := app.PublishErr(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := app.PublishErr(); err != nil {
		b.Fatal(err)
	}
	if err := m.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := wal.Recover(dir)
		if err != nil {
			b.Fatal(err)
		}
		if rec.RecoveredRows != rows {
			b.Fatalf("recovered %d rows, want %d", rec.RecoveredRows, rows)
		}
	}
}
