package datalab

import (
	"context"
	"fmt"

	"datalab/internal/comm"
	"datalab/internal/notebook"
	"datalab/internal/textutil"
)

// NotebookSession is a headless DataLab notebook: multi-language cells,
// live dependency DAG, and context-managed LLM assistance (§VI).
type NotebookSession struct {
	platform *Platform
	nb       *notebook.Notebook
	mgr      *notebook.Manager
}

// NewNotebook opens a notebook session on the platform.
func (p *Platform) NewNotebook(name string) *NotebookSession {
	nb := notebook.New(name)
	return &NotebookSession{
		platform: p,
		nb:       nb,
		mgr:      notebook.NewManager(nb, comm.NewBuffer(8)),
	}
}

// AddSQL appends a SQL cell whose result binds to outputVar. The query is
// executed against the platform catalog immediately; re-running the same
// cell later (RunSQL) hits the plan cache and skips parsing.
func (s *NotebookSession) AddSQL(source, outputVar string) (cellID string, err error) {
	id, err := s.nb.AddSQLCell(source, outputVar)
	if err != nil {
		return "", err
	}
	if _, err := s.platform.catalog.QueryCtx(context.Background(), source); err != nil {
		// The cell stays (users keep broken drafts around); the error is
		// surfaced so the caller can show it.
		return id, fmt.Errorf("datalab: cell %s added but execution failed: %w", id, err)
	}
	return id, nil
}

// RunSQL re-executes a SQL cell and returns its typed Result. The cell's
// source was plan-cached when the cell was added, so re-runs skip the
// parser entirely.
func (s *NotebookSession) RunSQL(ctx context.Context, cellID string) (*Result, error) {
	c, ok := s.nb.Cell(cellID)
	if !ok {
		return nil, fmt.Errorf("datalab: unknown cell %q", cellID)
	}
	if c.Type != notebook.CellSQL {
		return nil, fmt.Errorf("datalab: cell %s is %s, not sql", cellID, c.Type)
	}
	return s.platform.catalog.QueryCtx(ctx, c.Source)
}

// AppendRecords streams string records into a registered table and
// publishes one new snapshot; SQL cells re-run after this call observe the
// appended rows, while a Result still being iterated keeps its snapshot.
func (s *NotebookSession) AppendRecords(name string, rows [][]string) error {
	return s.platform.AppendRecords(name, rows)
}

// AddPython appends a Python cell (static analysis only: the DAG tracks
// its variables; data operations run through agents).
func (s *NotebookSession) AddPython(source string) (string, error) {
	return s.nb.AddCell(notebook.CellPython, source)
}

// AddMarkdown appends a Markdown cell.
func (s *NotebookSession) AddMarkdown(source string) (string, error) {
	return s.nb.AddCell(notebook.CellMarkdown, source)
}

// AddChart appends a chart cell from a JSON spec.
func (s *NotebookSession) AddChart(specJSON string) (string, error) {
	return s.nb.AddCell(notebook.CellChart, specJSON)
}

// UpdateCell replaces a cell's source, refreshing the dependency DAG.
func (s *NotebookSession) UpdateCell(id, source string) error {
	return s.nb.UpdateCell(id, source)
}

// DeleteCell removes a cell.
func (s *NotebookSession) DeleteCell(id string) error {
	return s.nb.DeleteCell(id)
}

// NumCells returns the number of cells.
func (s *NotebookSession) NumCells() int { return s.nb.NumCells() }

// DependsOn returns the cell IDs a cell directly references.
func (s *NotebookSession) DependsOn(id string) []string { return s.nb.DependsOn(id) }

// ContextInfo describes the context DataLab would send to its agents for
// a query — useful for inspecting token costs.
type ContextInfo struct {
	CellIDs []string
	Tokens  int
}

// ContextFor resolves the minimum relevant context for a notebook-level
// query (Algorithm 3 + task-type pruning).
func (s *NotebookSession) ContextFor(query string) ContextInfo {
	ctx := s.mgr.QueryContext(query, "")
	info := ContextInfo{Tokens: ctx.Tokens()}
	for _, c := range ctx.Cells {
		info.CellIDs = append(info.CellIDs, c.ID)
	}
	return info
}

// FullContextTokens reports what the same query would cost without the
// DAG (every cell) — the S1 arm of Table IV.
func (s *NotebookSession) FullContextTokens() int {
	n := 0
	for _, c := range s.nb.Cells() {
		n += textutil.CountTokens(c.Source)
	}
	return n
}
