// Package datalab is the public facade of the DataLab reproduction: a
// unified, LLM-powered business-intelligence platform combining a
// multi-agent framework (SQL, analysis, visualization, insight agents
// coordinated by a proxy over an FSM plan) with a computational-notebook
// backend, per "DataLab: A Unified Platform for LLM-Powered Business
// Intelligence" (ICDE 2025).
//
// A [Platform] owns a warehouse catalog, an optional enterprise knowledge
// graph, and the simulated LLM client. Typical use:
//
//	p := datalab.MustNew(datalab.WithModel("gpt-4"))
//	p.LoadCSV("sales", file)
//	ans, err := p.Ask("total revenue by region as a bar chart", "sales")
//	fmt.Println(ans.SQL, ans.ChartJSON)
//
// # Querying
//
// Raw SQL goes straight at the vectorized columnar engine through
// [Platform.QueryCtx], which returns a typed, batch-iterable [Result]:
//
//	res, err := p.QueryCtx(ctx, "SELECT region, revenue FROM sales WHERE revenue > 100")
//	for b := res.Next(); b != nil; b = res.Next() {
//		for i := 0; i < b.NumRows(); i++ {
//			if v, ok := b.Float64(1, i); ok { ... }
//		}
//	}
//
// Hot queries prepare once with [Platform.Prepare] and re-execute the
// returned [Stmt] without ever re-parsing. The engine supports multi-table
// queries with INNER, LEFT, RIGHT, and FULL OUTER joins, grouping, typed
// multi-key ordering with top-K pushdown, and chunk-granular context
// cancellation; see docs/ENGINE.md for the execution lifecycle.
//
// A Platform is safe for concurrent use: Ask, QueryCtx, and Stmt.Exec may
// run from many goroutines at once, and knowledge updates are
// copy-on-write snapshots that never race in-flight readers.
package datalab
