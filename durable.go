package datalab

import (
	"time"

	"datalab/internal/wal"
)

// DurabilityOptions configures the write-ahead log of a durable
// platform. The zero value is the safest configuration: fsync on every
// publish, 64 MiB automatic checkpoints.
type DurabilityOptions struct {
	// Fsync is the durability policy: "always" (default — every publish
	// is fsynced before it returns and becomes visible), "interval"
	// (fsync on a timer; a process crash loses nothing, an OS crash at
	// most the last interval), or "off" (the OS flushes when it
	// pleases).
	Fsync string
	// FsyncInterval is the timer period under the "interval" policy
	// (default 100ms).
	FsyncInterval time.Duration
	// CheckpointBytes triggers an automatic checkpoint — compacting the
	// log into a snapshot file and deleting the replayed prefix — after
	// this many log bytes (default 64 MiB; negative disables).
	CheckpointBytes int64
}

// DurabilityStats is a point-in-time view of the durability layer,
// zero-valued (Enabled false) on a memory-only platform.
type DurabilityStats struct {
	// Enabled reports whether this platform was opened with OpenDurable.
	Enabled bool
	// WALBytes is the cumulative log bytes written, including the
	// prefix recovered at open.
	WALBytes int64
	// Checkpoints counts checkpoints completed since open;
	// LastCheckpointUnixMilli is the newest one's completion time.
	Checkpoints             int64
	LastCheckpointUnixMilli int64
	// SnapshotVersion is the highest published snapshot version across
	// durable tables — the value recovery reproduces after a crash.
	SnapshotVersion uint64
	// RecoveredRows and ReplayDuration describe the recovery this
	// platform booted from (both zero for a fresh data directory).
	RecoveredRows  int64
	ReplayDuration time.Duration
}

// OpenDurable creates a platform whose catalog is backed by a
// write-ahead log in dir: every table registration and every published
// chunk is journaled before it becomes visible, and reopening the same
// directory recovers every table at its exact pre-crash snapshot
// version (replaying the newest checkpoint plus the log tail, stopping
// cleanly at a torn final record).
//
// The returned platform behaves exactly like New's otherwise; queries
// and snapshot isolation are untouched because durability hooks sit on
// the write path only. Close releases the log.
func OpenDurable(dir string, d DurabilityOptions, opts ...Option) (*Platform, error) {
	p, err := New(opts...)
	if err != nil {
		return nil, err
	}
	policy, err := wal.ParsePolicy(d.Fsync)
	if err != nil {
		return nil, err
	}
	m, rec, err := wal.Open(dir, wal.Options{
		Fsync:           policy,
		FsyncInterval:   d.FsyncInterval,
		CheckpointBytes: d.CheckpointBytes,
	})
	if err != nil {
		return nil, err
	}
	for _, app := range rec.Appenders {
		// Recovered write heads are already durable and already hooked —
		// adopt them without re-journaling a registration.
		p.catalog.RegisterAppender(app)
	}
	p.catalog.SetRegisterHook(m.Track)
	p.wal = m
	p.recovered = rec
	return p, nil
}

// DurabilityStats reports the durability counters; on a memory-only
// platform every field is zero and Enabled is false.
func (p *Platform) DurabilityStats() DurabilityStats {
	if p.wal == nil {
		return DurabilityStats{}
	}
	s := p.wal.Stats()
	return DurabilityStats{
		Enabled:                 true,
		WALBytes:                s.WALBytes,
		Checkpoints:             s.Checkpoints,
		LastCheckpointUnixMilli: s.LastCheckpointUnixMilli,
		SnapshotVersion:         s.SnapshotVersion,
		RecoveredRows:           p.recovered.RecoveredRows,
		ReplayDuration:          p.recovered.ReplayDuration,
	}
}

// Checkpoint forces a checkpoint now: the catalog is serialized into a
// compact snapshot file and the superseded log prefix deleted. No-op
// (nil) on a memory-only platform.
func (p *Platform) Checkpoint() error {
	if p.wal == nil {
		return nil
	}
	return p.wal.Checkpoint()
}

// Close flushes and closes the write-ahead log. Publishing to a durable
// table after Close fails rather than silently losing durability.
// Memory-only platforms close as a no-op. Safe to call twice.
func (p *Platform) Close() error {
	if p.wal == nil {
		return nil
	}
	return p.wal.Close()
}
