# Multi-stage build for datalab-server: compile a static binary, then
# ship it on scratch. The final image carries no shell, no libc, and no
# package manager — the server binary doubles as its own health probe
# (`datalab-server -check <url>`), so HEALTHCHECK needs no curl.
FROM golang:1.24 AS build
WORKDIR /src

# Module metadata first so the dependency layer caches across source edits
# (the module is stdlib-only, but the layer split keeps builds incremental).
COPY go.mod ./
RUN go mod download

COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/datalab-server ./cmd/datalab-server

FROM scratch
COPY --from=build /out/datalab-server /datalab-server
EXPOSE 8080
# /data holds the write-ahead log and checkpoints; mount a volume there to
# survive container replacement (compose binds the datalab-data volume).
VOLUME /data
HEALTHCHECK --interval=2s --timeout=3s --start-period=5s --retries=15 \
  CMD ["/datalab-server", "-check", "http://localhost:8080/healthz"]
ENTRYPOINT ["/datalab-server"]
CMD ["-addr", ":8080", "-data", "/data"]
