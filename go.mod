module datalab

go 1.24
