package datalab

// Benchmark harness: one testing.B target per table/figure in the paper's
// evaluation (see DESIGN.md's per-experiment index), plus micro-benchmarks
// of the hot substrates. Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benches print the regenerated table/figure once per run
// (on the first iteration) and report ns/op for the full experiment.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"datalab/internal/benchgen"
	"datalab/internal/experiments"
	"datalab/internal/knowledge"
	"datalab/internal/llm"
	"datalab/internal/sqlengine"
	"datalab/internal/table"
)

// benchScale keeps experiment benches fast while exercising the full code
// path; cmd/datalab-bench runs full workloads.
const benchScale = 0.2

var printOnce sync.Map

func printHeader(b *testing.B, name, body string) {
	if _, done := printOnce.LoadOrStore(name, true); !done {
		b.Logf("\n== %s ==\n%s", name, body)
	}
}

func BenchmarkTable1NL2SQL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1("bench", benchScale)
		var sb strings.Builder
		for _, r := range rows {
			if r.Task == "NL2SQL" {
				sb.WriteString(r.Format() + "\n")
			}
		}
		printHeader(b, "Table I (NL2SQL rows)", sb.String())
	}
}

func BenchmarkTable1NL2DSCode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1("bench", benchScale)
		var sb strings.Builder
		for _, r := range rows {
			if r.Task == "NL2DSCode" {
				sb.WriteString(r.Format() + "\n")
			}
		}
		printHeader(b, "Table I (NL2DSCode rows)", sb.String())
	}
}

func BenchmarkTable1NL2Insight(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1("bench", benchScale)
		var sb strings.Builder
		for _, r := range rows {
			if r.Task == "NL2Insight" {
				sb.WriteString(r.Format() + "\n")
			}
		}
		printHeader(b, "Table I (NL2Insight rows)", sb.String())
	}
}

func BenchmarkTable1NL2VIS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1("bench", benchScale)
		var sb strings.Builder
		for _, r := range rows {
			if r.Task == "NL2VIS" {
				sb.WriteString(r.Format() + "\n")
			}
		}
		printHeader(b, "Table I (NL2VIS rows)", sb.String())
	}
}

func BenchmarkFigure6LLMSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure6("bench", benchScale)
		var sb strings.Builder
		for _, r := range rows {
			sb.WriteString(r.Format() + "\n")
		}
		printHeader(b, "Figure 6", sb.String())
	}
}

func BenchmarkKnowledgeGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats := experiments.KnowledgeGeneration("bench", 10)
		printHeader(b, "Knowledge generation (§VII-C.1)", stats.Format())
	}
}

func BenchmarkTable2KnowledgeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2("bench", 6, 90, 66)
		printHeader(b, "Table II", res.Format())
	}
}

func BenchmarkTable3CommunicationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3("bench", 4, 20)
		printHeader(b, "Table III", res.Format())
	}
}

func BenchmarkFigure7DAGConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure7("bench", 49)
		if err != nil {
			b.Fatal(err)
		}
		printHeader(b, "Figure 7", experiments.FormatFigure7(points))
	}
}

func BenchmarkTable4ContextAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4("bench", 12)
		if err != nil {
			b.Fatal(err)
		}
		printHeader(b, "Table IV", res.Format())
	}
}

// --- micro-benchmarks of the substrates ---

func benchCatalog() *sqlengine.Catalog {
	t := table.MustNew("sales",
		[]string{"region", "product", "amount", "when"},
		[]table.Kind{table.KindString, table.KindString, table.KindFloat, table.KindTime})
	regions := []string{"east", "west", "north", "south"}
	products := []string{"widget", "gadget", "sprocket"}
	for i := 0; i < 5000; i++ {
		t.MustAppendRow(
			table.Str(regions[i%len(regions)]),
			table.Str(products[i%len(products)]),
			table.Float(float64(i%977)),
			table.Str(fmt.Sprintf("2024-%02d-%02d", i%12+1, i%28+1)),
		)
	}
	cat := sqlengine.NewCatalog()
	cat.Register(t)
	return cat
}

func BenchmarkSQLAggregationQuery(b *testing.B) {
	cat := benchCatalog()
	const q = "SELECT region, SUM(amount) AS total FROM sales WHERE product <> 'sprocket' GROUP BY region ORDER BY total DESC"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLParse(b *testing.B) {
	const q = "SELECT a, SUM(b) AS s FROM t JOIN u ON t.k = u.k WHERE c BETWEEN 1 AND 9 AND d IN ('x','y') GROUP BY a HAVING SUM(b) > 10 ORDER BY s DESC LIMIT 5"
	for i := 0; i < b.N; i++ {
		if _, err := sqlengine.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKnowledgeRetrieval(b *testing.B) {
	client := llm.NewClient(llm.GPT4, "bench-retrieval")
	gen := knowledge.NewGenerator(client)
	graph := knowledge.NewGraph()
	for _, et := range benchgen.GenerateEnterprise("bench-retrieval", 8) {
		bundle, err := gen.Generate(et.Schema, et.Scripts, et.Lineage)
		if err != nil {
			b.Fatal(err)
		}
		graph.AddBundle(bundle, knowledge.LevelFull)
	}
	r := knowledge.NewRetriever(graph, client)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RetrieveColumns("total income after tax by business group", 10)
	}
}

func BenchmarkNotebookDAGConstruction(b *testing.B) {
	g, err := benchgen.GenerateNotebook("bench-dag", 40)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Notebook.ConstructDAG()
	}
}

// --- vectorized vs scalar execution benchmarks ---
//
// These pit the columnar vectorized engine (Catalog.Query) against the
// row-at-a-time scalar reference path (Catalog.QueryScalar) on a 100k-row
// table; the vectorized path is the one the platform uses. Run with:
//
//	go test -bench='Vectorized|Scalar' -benchmem

// benchBigTable builds the canonical 5-column sales table used across the
// micro-benchmarks (and rebuilt by the ingest benches to bound growth).
func benchBigTable(rows int) *table.Table {
	t := table.MustNew("big",
		[]string{"id", "region", "product_id", "amount", "qty"},
		[]table.Kind{table.KindInt, table.KindString, table.KindInt, table.KindFloat, table.KindInt})
	regions := []string{"east", "west", "north", "south", "emea", "apac"}
	for i := 0; i < rows; i++ {
		t.MustAppendRow(
			table.Int(int64(i)),
			table.Str(regions[i%len(regions)]),
			table.Int(int64(i%64)),
			table.Float(float64((i*7919)%100000)/100),
			table.Int(int64(i%13)),
		)
	}
	return t
}

// benchBigCatalog builds a 100k-row sales table plus a small dimension
// table for join benchmarks.
func benchBigCatalog(rows int) *sqlengine.Catalog {
	t := benchBigTable(rows)
	dim := table.MustNew("product",
		[]string{"pid", "category", "price"},
		[]table.Kind{table.KindInt, table.KindString, table.KindFloat})
	for k := 0; k < 64; k++ {
		dim.MustAppendRow(table.Int(int64(k)), table.Str(fmt.Sprintf("cat%d", k%5)), table.Float(float64(k)*3.5))
	}
	// promo fans out: three rows per product_id, so every big row
	// multi-matches (100k probe rows -> 300k join output rows).
	promo := table.MustNew("promo",
		[]string{"pid", "deal", "discount"},
		[]table.Kind{table.KindInt, table.KindString, table.KindFloat})
	for k := 0; k < 64; k++ {
		for d := 0; d < 3; d++ {
			promo.MustAppendRow(table.Int(int64(k)), table.Str(fmt.Sprintf("deal%d_%d", k, d)), table.Float(float64((k*3+d)%13)))
		}
	}
	// sparsedim covers only half the product_ids (plus orphans no big row
	// carries), so outer joins pad half the probe side and FULL OUTER has
	// build rows to sweep.
	sparsedim := table.MustNew("sparsedim",
		[]string{"pid", "label"},
		[]table.Kind{table.KindInt, table.KindString})
	for k := 0; k < 32; k++ {
		sparsedim.MustAppendRow(table.Int(int64(k)), table.Str(fmt.Sprintf("lab%d", k)))
	}
	for k := 100; k < 110; k++ {
		sparsedim.MustAppendRow(table.Int(int64(k)), table.Str(fmt.Sprintf("orphan%d", k)))
	}
	cat := sqlengine.NewCatalog()
	cat.Register(t)
	cat.Register(dim)
	cat.Register(promo)
	cat.Register(sparsedim)
	return cat
}

const (
	benchRows        = 100_000
	benchFilterQuery = "SELECT id, amount FROM big WHERE amount > 400 AND qty < 10 AND region <> 'apac'"
	benchGroupQuery  = "SELECT region, SUM(amount), COUNT(*), AVG(qty) FROM big WHERE amount > 100 GROUP BY region"
	benchJoinQuery   = "SELECT big.region, product.category, SUM(big.amount) FROM big JOIN product ON big.product_id = product.pid GROUP BY big.region, product.category"
)

func benchQuery(b *testing.B, q string, scalar bool) {
	b.Helper()
	cat := benchBigCatalog(benchRows)
	run := cat.Query
	if scalar {
		run = cat.QueryScalar
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilter100kVectorized(b *testing.B) { benchQuery(b, benchFilterQuery, false) }
func BenchmarkFilter100kScalar(b *testing.B)     { benchQuery(b, benchFilterQuery, true) }

func BenchmarkGroupBy100kVectorized(b *testing.B) { benchQuery(b, benchGroupQuery, false) }
func BenchmarkGroupBy100kScalar(b *testing.B)     { benchQuery(b, benchGroupQuery, true) }

func BenchmarkJoin100kVectorized(b *testing.B) { benchQuery(b, benchJoinQuery, false) }

// BenchmarkJoin10kScalar uses 10k rows: the scalar nested-loop join over
// 100k x 64 pairs is too slow to benchmark comfortably.
func BenchmarkJoin10kScalar(b *testing.B) {
	cat := benchBigCatalog(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.QueryScalar(benchJoinQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoin10kVectorized(b *testing.B) {
	cat := benchBigCatalog(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Query(benchJoinQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// --- join pipeline sweep ---
//
// One benchmark per join shape over the 100k-row probe table, each paired
// with a Serial twin that pins the single-goroutine probe baseline via the
// sqlengine.SerialJoinProbe hook — the delta is the parallel pipeline's
// win. MultiMatch measures dense-pair fan-out (300k output rows), Residual
// adds a cross-side ON conjunct (batched candidate-pair evaluation),
// LeftOuter/FullOuter measure null-mask padding and the unmatched-build
// sweep, RightOuter the probe-side flip. Run:
//
//	go test -run xxx -bench=Join -benchmem

const (
	benchJoinMultiQuery    = "SELECT big.id, promo.discount FROM big JOIN promo ON big.product_id = promo.pid"
	benchJoinResidualQuery = "SELECT big.id, promo.deal FROM big JOIN promo ON big.product_id = promo.pid AND promo.discount > big.qty"
	benchJoinLeftQuery     = "SELECT big.id, sparsedim.label FROM big LEFT JOIN sparsedim ON big.product_id = sparsedim.pid"
	benchJoinFullQuery     = "SELECT big.id, sparsedim.label FROM big FULL OUTER JOIN sparsedim ON big.product_id = sparsedim.pid"
	benchJoinRightQuery    = "SELECT big.id, promo.deal FROM promo RIGHT JOIN big ON promo.pid = big.product_id"
)

func benchJoin(b *testing.B, q string, serial bool) {
	b.Helper()
	cat := benchBigCatalog(benchRows)
	if serial {
		sqlengine.SerialJoinProbe.Store(true)
		defer sqlengine.SerialJoinProbe.Store(false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinMultiMatch100k(b *testing.B)       { benchJoin(b, benchJoinMultiQuery, false) }
func BenchmarkJoinMultiMatch100kSerial(b *testing.B) { benchJoin(b, benchJoinMultiQuery, true) }
func BenchmarkJoinResidual100k(b *testing.B)         { benchJoin(b, benchJoinResidualQuery, false) }
func BenchmarkJoinResidual100kSerial(b *testing.B)   { benchJoin(b, benchJoinResidualQuery, true) }
func BenchmarkJoinLeftOuter100k(b *testing.B)        { benchJoin(b, benchJoinLeftQuery, false) }
func BenchmarkJoinLeftOuter100kSerial(b *testing.B)  { benchJoin(b, benchJoinLeftQuery, true) }
func BenchmarkJoinFullOuter100k(b *testing.B)        { benchJoin(b, benchJoinFullQuery, false) }
func BenchmarkJoinFullOuter100kSerial(b *testing.B)  { benchJoin(b, benchJoinFullQuery, true) }
func BenchmarkJoinRightOuter100k(b *testing.B)       { benchJoin(b, benchJoinRightQuery, false) }
func BenchmarkJoinRightOuter100kSerial(b *testing.B) { benchJoin(b, benchJoinRightQuery, true) }

// --- selectivity sweep ---
//
// One benchmark per WHERE selectivity over the 100k-row table, in two
// layouts: clustered (passing rows form one contiguous run, the best case
// for span-form selections) and scattered (passing rows alternate, forcing
// dense indices). allocs/op is the zero-copy signal: an all-passing or
// clustered predicate must not allocate a per-row selection vector. Run:
//
//	go test -run xxx -bench=Selectivity -benchmem

func benchSelectivity(b *testing.B, where string) {
	b.Helper()
	cat := benchBigCatalog(benchRows)
	q := "SELECT id, amount FROM big WHERE " + where
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectivity0(b *testing.B)   { benchSelectivity(b, "id < 0") }
func BenchmarkSelectivity1(b *testing.B)   { benchSelectivity(b, "id < 1000") }
func BenchmarkSelectivity50(b *testing.B)  { benchSelectivity(b, "id < 50000") }
func BenchmarkSelectivity99(b *testing.B)  { benchSelectivity(b, "id < 99000") }
func BenchmarkSelectivity100(b *testing.B) { benchSelectivity(b, "id >= 0") }

// Scattered variants: the same pass rates but spread periodically through
// the table, so passing rows never form long runs.
func BenchmarkSelectivity1Scattered(b *testing.B)  { benchSelectivity(b, "id % 100 = 0") }
func BenchmarkSelectivity50Scattered(b *testing.B) { benchSelectivity(b, "id % 2 = 0") }

// --- ORDER BY sweep ---
//
// One benchmark per ORDER BY shape over the 100k-row table. allocs/op is
// the boxing signal: the typed sort kernel must not box a Value per
// comparison, and ORDER BY + LIMIT k must keep a bounded heap instead of
// sorting all 100k rows. Scalar variants pin the row-at-a-time reference
// for the speedup tables. Run:
//
//	go test -run xxx -bench=OrderBy -benchmem

func benchOrderBy(b *testing.B, q string, scalar bool) {
	b.Helper()
	cat := benchBigCatalog(benchRows)
	run := cat.Query
	if scalar {
		run = cat.QueryScalar
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(q); err != nil {
			b.Fatal(err)
		}
	}
}

const (
	benchOrderByQuery         = "SELECT id, amount FROM big ORDER BY amount"
	benchOrderByLimitQuery    = "SELECT id, amount FROM big ORDER BY amount DESC LIMIT 10"
	benchOrderByMultiKeyQuery = "SELECT region, qty, amount FROM big ORDER BY region, qty DESC, amount"
	benchOrderByOffsetQuery   = "SELECT id, amount FROM big ORDER BY amount LIMIT 10 OFFSET 1000"
)

func BenchmarkOrderBy100k(b *testing.B)        { benchOrderBy(b, benchOrderByQuery, false) }
func BenchmarkOrderBy100kScalar(b *testing.B)  { benchOrderBy(b, benchOrderByQuery, true) }
func BenchmarkOrderByLimit(b *testing.B)       { benchOrderBy(b, benchOrderByLimitQuery, false) }
func BenchmarkOrderByLimitScalar(b *testing.B) { benchOrderBy(b, benchOrderByLimitQuery, true) }
func BenchmarkOrderByMultiKey(b *testing.B)    { benchOrderBy(b, benchOrderByMultiKeyQuery, false) }
func BenchmarkOrderByLimitOffset(b *testing.B) { benchOrderBy(b, benchOrderByOffsetQuery, false) }
func BenchmarkOrderByFiltered(b *testing.B) {
	benchOrderBy(b, "SELECT id, amount FROM big WHERE qty < 7 ORDER BY amount DESC LIMIT 25", false)
}

// --- result consumption: typed batches vs stringly materialization ---
//
// The headline pair for the typed Result API on the same 100k-row filtered
// scan: BenchmarkResultBatches100k consumes the result through zero-copy
// batch views and typed slab accessors (what QueryCtx callers do), while
// BenchmarkResultStrings100k reproduces the legacy [][]string pipeline
// (what the deprecated Platform.Query / Answer.Rows shims do: materialize
// the output table, then box and stringify every cell). bytes/op and
// allocs/op are the signal: the batch path must not allocate per row or
// per cell. The Scattered pair repeats the comparison with a dense-form
// selection, where batches gather instead of viewing. Run:
//
//	go test -run xxx -bench='Result|Prepared' -benchmem

// benchConsumeBatches drains a Result through typed slab accessors,
// summing the float column — the intended consumption pattern.
func benchConsumeBatches(b *testing.B, res *Result) {
	b.Helper()
	var total float64
	for batch := res.Next(); batch != nil; batch = res.Next() {
		if fs, nulls, ok := batch.Float64s(1); ok {
			for j, f := range fs {
				if !nulls[j] {
					total += f
				}
			}
			continue
		}
		for j := 0; j < batch.NumRows(); j++ {
			if f, ok := batch.Float64(1, j); ok {
				total += f
			}
		}
	}
	if total == 0 {
		b.Fatal("empty scan")
	}
}

// benchLegacyStrings reproduces the pre-redesign tableToStrings path bit
// for bit: a materialized result table, then one []string per row and one
// boxed stringification per cell.
func benchLegacyStrings(b *testing.B, cat *sqlengine.Catalog, q string) {
	b.Helper()
	tbl, err := cat.Query(q)
	if err != nil {
		b.Fatal(err)
	}
	cols := tbl.ColumnNames()
	rows := make([][]string, tbl.NumRows())
	for i := range rows {
		row := make([]string, len(cols))
		for j, v := range tbl.Row(i) {
			row[j] = v.AsString()
		}
		rows[i] = row
	}
	if len(rows) == 0 {
		b.Fatal("empty scan")
	}
}

const (
	benchResultClusteredQuery = "SELECT id, amount FROM big WHERE id < 90000"   // one span: zero-copy batches
	benchResultScatteredQuery = "SELECT id, amount FROM big WHERE amount > 100" // short runs: span/gather mix
)

func BenchmarkResultBatches100k(b *testing.B) {
	cat := benchBigCatalog(benchRows)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cat.QueryCtx(ctx, benchResultClusteredQuery)
		if err != nil {
			b.Fatal(err)
		}
		benchConsumeBatches(b, res)
	}
}

func BenchmarkResultStrings100k(b *testing.B) {
	cat := benchBigCatalog(benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchLegacyStrings(b, cat, benchResultClusteredQuery)
	}
}

func BenchmarkResultBatchesScattered(b *testing.B) {
	cat := benchBigCatalog(benchRows)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cat.QueryCtx(ctx, benchResultScatteredQuery)
		if err != nil {
			b.Fatal(err)
		}
		benchConsumeBatches(b, res)
	}
}

func BenchmarkResultStringsScattered(b *testing.B) {
	cat := benchBigCatalog(benchRows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchLegacyStrings(b, cat, benchResultScatteredQuery)
	}
}

// --- prepared statements: parse amortization ---
//
// The same small aggregation, re-executed: BenchmarkPreparedExec runs a
// Prepared handle (no parsing ever), BenchmarkPreparedExecReparse re-parses
// the text each iteration (the pre-plan-cache cost a fresh SQL string still
// pays). The delta is the amortized parse/plan cost.

const benchPreparedQuery = "SELECT region, SUM(amount) AS total, COUNT(*) FROM big WHERE qty < 9 GROUP BY region ORDER BY total DESC LIMIT 3"

func BenchmarkPreparedExec(b *testing.B) {
	cat := benchBigCatalog(64)
	stmt, err := cat.Prepare(benchPreparedQuery)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Exec(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreparedExecReparse(b *testing.B) {
	cat := benchBigCatalog(64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stmt, err := sqlengine.Parse(benchPreparedQuery)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cat.ExecuteResult(ctx, stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedBind100k is the steady-state hot loop the placeholder
// API exists for: one prepared template over the 100k-row catalog, a fresh
// argument bound every execution. Binding is a slice write per slot; against
// BenchmarkPreparedExecReparse the delta is the parse/plan cost avoided.
func BenchmarkPreparedBind100k(b *testing.B) {
	cat := benchBigCatalog(benchRows)
	stmt, err := cat.Prepare("SELECT region, SUM(amount) AS total, COUNT(*) FROM big WHERE qty < ? GROUP BY region ORDER BY total DESC LIMIT ?")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Exec(ctx, 1+i%12, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryFingerprintHit: Query text changes every iteration but all
// texts normalize to one template, so steady state is fingerprint + plan
// cache hit + execute — no parsing. This is the agent-traffic shape the
// fingerprint normalizer was built for.
func BenchmarkQueryFingerprintHit(b *testing.B) {
	cat := benchBigCatalog(64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("SELECT region, SUM(amount) FROM big WHERE qty < %d AND region <> '%s' GROUP BY region", 1+i%12, "apac")
		if _, err := cat.QueryCtx(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryFingerprintMiss: every text is a structurally distinct
// template (the alias defeats normalization), so each iteration pays
// fingerprint + full parse + cache insert — the worst case, bounding the
// normalizer's overhead on top of a guaranteed miss.
func BenchmarkQueryFingerprintMiss(b *testing.B) {
	cat := benchBigCatalog(64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf("SELECT id AS c%d FROM big WHERE id < %d", i, i%64)
		if _, err := cat.QueryCtx(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFingerprintOnly isolates the normalizer itself: lex + splice,
// no cache, no execution.
func BenchmarkFingerprintOnly(b *testing.B) {
	const q = "SELECT region, SUM(amount) FROM big WHERE qty < 7 AND region <> 'apac' AND id IN (1, 2, 3) GROUP BY region HAVING COUNT(*) > 2 LIMIT 5"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := sqlengine.Fingerprint(q); !ok {
			b.Fatal("fingerprint failed")
		}
	}
}

// BenchmarkConcurrentQuery measures throughput with many goroutines sharing
// the catalog and the engine's bounded worker pool.
func BenchmarkConcurrentQuery(b *testing.B) {
	cat := benchBigCatalog(benchRows)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cat.Query(benchGroupQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- streaming ingest benchmarks ---
//
// BenchmarkAppend measures the writer hot path (stage a row into the
// pending chunk; publish a snapshot every 1024 rows), and
// BenchmarkQueryDuringIngest measures reader throughput while a background
// ingester publishes snapshots continuously — the delta against
// BenchmarkGroupBy100kVectorized is the cost readers pay for live ingest,
// which the lock-free snapshot design keeps near zero. Run:
//
//	go test -run xxx -bench='Append|Ingest' -benchmem

func BenchmarkAppend(b *testing.B) {
	cat := sqlengine.NewCatalog()
	fresh := func() *table.Appender {
		cat.Register(table.MustNew("stream",
			[]string{"v", "p"}, []table.Kind{table.KindInt, table.KindInt}))
		app, _ := cat.Appender("stream")
		return app
	}
	app := fresh()
	row := []table.Value{table.Int(0), table.Int(0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row[0], row[1] = table.Int(int64(i)), table.Int(int64(i&1))
		if err := app.Append(row); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			app.Publish()
		}
		// Bound arena growth on long runs by starting a fresh table.
		if i%(1<<21) == (1<<21)-1 {
			b.StopTimer()
			app = fresh()
			b.StartTimer()
		}
	}
	app.Publish()
}

func BenchmarkQueryDuringIngest(b *testing.B) {
	cat := benchBigCatalog(benchRows)
	app, _ := cat.Appender("big")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		regions := []string{"east", "west", "north", "south", "emea", "apac"}
		i := benchRows
		for {
			select {
			case <-stop:
				return
			default:
			}
			for k := 0; k < 512; k++ {
				_ = app.Append([]table.Value{
					table.Int(int64(i)),
					table.Str(regions[i%len(regions)]),
					table.Int(int64(i % 64)),
					table.Float(float64((i*7919)%100000) / 100),
					table.Int(int64(i % 13)),
				})
				i++
			}
			if app.Publish().NumRows() >= 2*benchRows {
				// Re-register at seed size so long runs stay bounded; the
				// schema is unchanged, so the plan cache survives the swap.
				cat.Register(benchBigTable(benchRows))
				app, _ = cat.Appender("big")
				i = benchRows
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cat.Query(benchGroupQuery); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

func BenchmarkPlatformAsk(b *testing.B) {
	p := MustNew(WithSeed("bench-ask"))
	if err := p.LoadRecords("sales",
		[]string{"region", "revenue"},
		[][]string{{"east", "100"}, {"west", "250"}, {"north", "90"}}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Ask("total revenue by region", "sales"); err != nil {
			b.Fatal(err)
		}
	}
}
