package datalab

import (
	"context"
	"strings"
	"testing"

	"datalab/internal/sqlengine"
)

func demoPlatform(t *testing.T) *Platform {
	t.Helper()
	p := MustNew(WithSeed("facade-test"))
	err := p.LoadRecords("sales",
		[]string{"region", "product", "revenue", "sale_date"},
		[][]string{
			{"east", "widget", "100.5", "2024-01-05"},
			{"east", "gadget", "250.0", "2024-02-03"},
			{"west", "widget", "80.25", "2024-03-10"},
			{"west", "gadget", "300.0", "2024-04-21"},
			{"north", "widget", "120.0", "2024-05-11"},
			{"north", "gadget", "900.0", "2024-06-18"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsUnknownModel(t *testing.T) {
	if _, err := New(WithModel("gpt-99")); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestLoadCSVAndQuery(t *testing.T) {
	p := MustNew(WithSeed("csv"))
	csv := "a,b\n1,x\n2,y\n"
	if err := p.LoadCSV("t", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	cols, rows, err := p.Query("SELECT a FROM t WHERE b = 'y'")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || len(rows) != 1 || rows[0][0] != "2" {
		t.Errorf("result = %v %v", cols, rows)
	}
	if len(p.Tables()) != 1 {
		t.Errorf("tables = %v", p.Tables())
	}
}

func TestQueryCtxTypedResult(t *testing.T) {
	p := demoPlatform(t)
	res, err := p.QueryCtx(context.Background(), "SELECT revenue, region FROM sales WHERE revenue > 100")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Columns(); len(got) != 2 || got[0] != "revenue" {
		t.Fatalf("columns = %v", got)
	}
	total, n := 0.0, 0
	for b := res.Next(); b != nil; b = res.Next() {
		for i := 0; i < b.NumRows(); i++ {
			v, ok := b.Float64(0, i)
			if !ok {
				t.Fatalf("row %d: revenue not numeric", i)
			}
			total += v
			n++
		}
	}
	if n != res.NumRows() || n != 5 {
		t.Fatalf("iterated %d rows, NumRows = %d, want 5", n, res.NumRows())
	}
	if total != 100.5+250.0+300.0+120.0+900.0 {
		t.Fatalf("total = %v", total)
	}
	// The deprecated shim returns the same rows as strings.
	cols, rows, err := p.Query("SELECT revenue, region FROM sales WHERE revenue > 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || len(rows) != 5 {
		t.Fatalf("shim = %v, %d rows", cols, len(rows))
	}
}

func TestPlatformPrepare(t *testing.T) {
	p := demoPlatform(t)
	stmt, err := p.Prepare("SELECT region, SUM(revenue) AS total FROM sales GROUP BY region ORDER BY total DESC")
	if err != nil {
		t.Fatal(err)
	}
	before := sqlengine.ParseCalls()
	var first [][]string
	for i := 0; i < 100; i++ {
		res, err := stmt.Exec(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Strings()
			continue
		}
	}
	if got := sqlengine.ParseCalls(); got != before {
		t.Fatalf("prepared re-execution parsed %d times", got-before)
	}
	if len(first) != 3 || first[0][0] != "north" {
		t.Fatalf("rows = %v", first)
	}
	if !strings.Contains(stmt.SQL(), "GROUP BY region") {
		t.Fatalf("SQL() = %q", stmt.SQL())
	}
}

func TestAnswerErrSurfacesSQLFailure(t *testing.T) {
	p := demoPlatform(t)
	// Drive fillRows directly with SQL that fails at execution: before the
	// redesign the failure was silently swallowed, yielding an Answer with
	// no rows and no error.
	ans := &Answer{SQL: "SELECT nope FROM missing_table"}
	p.fillRows(ans)
	if ans.Err == nil {
		t.Fatal("failing SQL left Answer.Err nil")
	}
	if !strings.Contains(ans.Err.Error(), "missing_table") {
		t.Errorf("Err = %v", ans.Err)
	}
	if ans.Result != nil || ans.Rows != nil {
		t.Errorf("failed execution still attached results: %+v", ans)
	}

	ok := &Answer{SQL: "SELECT region FROM sales"}
	p.fillRows(ok)
	if ok.Err != nil || ok.Result == nil || len(ok.Rows) != 6 {
		t.Errorf("good SQL: Err=%v Result=%v rows=%d", ok.Err, ok.Result != nil, len(ok.Rows))
	}
}

func TestSQLFromContent(t *testing.T) {
	multi := "SELECT region,\n       SUM(revenue)\nFROM sales\nGROUP BY region"
	content := multi + "\n-- dsl: {\"intent\":\"x\"}\nsales (3 rows)\npreview..."
	if got := sqlFromContent(content); got != multi {
		t.Errorf("multi-line SQL mangled: %q", got)
	}
	if got := sqlFromContent("SELECT 1\n"); got != "SELECT 1" {
		t.Errorf("no-marker content = %q", got)
	}
}

func TestAskAttachesTypedResult(t *testing.T) {
	p := demoPlatform(t)
	ans, err := p.Ask("total revenue by region", "sales")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Err != nil {
		t.Fatalf("Answer.Err = %v", ans.Err)
	}
	if ans.Result == nil {
		t.Fatal("Answer.Result is nil")
	}
	if got := ans.Result.Strings(); len(got) != len(ans.Rows) {
		t.Fatalf("Result has %d rows, Rows shim has %d", len(got), len(ans.Rows))
	}
}

func TestNotebookRunSQL(t *testing.T) {
	p := demoPlatform(t)
	nb := p.NewNotebook("typed")
	id, err := nb.AddSQL("SELECT region, revenue FROM sales", "raw")
	if err != nil {
		t.Fatal(err)
	}
	res, err := nb.RunSQL(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 6 || res.NumCols() != 2 {
		t.Fatalf("result shape = %dx%d", res.NumRows(), res.NumCols())
	}
	mdID, err := nb.AddMarkdown("## notes")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.RunSQL(context.Background(), mdID); err == nil {
		t.Fatal("RunSQL on a markdown cell should fail")
	}
	if _, err := nb.RunSQL(context.Background(), "c999"); err == nil {
		t.Fatal("RunSQL on unknown cell should fail")
	}
}

func TestAskSimpleAggregation(t *testing.T) {
	p := demoPlatform(t)
	ans, err := p.Ask("total revenue by region", "sales")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.SQL, "SELECT") {
		t.Errorf("missing SQL: %+v", ans)
	}
	if len(ans.Rows) != 3 {
		t.Errorf("rows = %d, want 3 regions", len(ans.Rows))
	}
	if len(ans.AgentTrace) == 0 {
		t.Error("empty agent trace")
	}
}

func TestAskWithChart(t *testing.T) {
	p := demoPlatform(t)
	ans, err := p.Ask("draw a bar chart of total revenue by region", "sales")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.ChartJSON, `"mark"`) {
		t.Errorf("missing chart: %q", ans.ChartJSON)
	}
}

func TestAskMultiAgentInsights(t *testing.T) {
	p := demoPlatform(t)
	ans, err := p.Ask("find anomalies in revenue and analyze why, then summarize the insights", "sales")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Insights) == 0 {
		t.Errorf("no insights: %+v", ans)
	}
}

func TestAskUnknownTable(t *testing.T) {
	p := demoPlatform(t)
	if _, err := p.Ask("anything", "ghost"); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestLearnKnowledgeEnablesJargon(t *testing.T) {
	p := MustNew(WithSeed("knowledge"))
	err := p.LoadRecords("23_customer_bg",
		[]string{"prod_class4_name", "shouldincome_after", "ftime"},
		[][]string{
			{"TencentBI", "1000.5", "2024-01-05"},
			{"TencentCloud", "2500.0", "2024-02-03"},
			{"TencentBI", "1800.25", "2024-03-10"},
		})
	if err != nil {
		t.Fatal(err)
	}
	err = p.LearnKnowledge("sales_db", "23_customer_bg",
		[]ColumnSchema{
			{Name: "prod_class4_name", Type: "string"},
			{Name: "shouldincome_after", Type: "double"},
			{Name: "ftime", Type: "date"},
		},
		[]Script{{
			ID:       "daily.sql",
			Language: "sql",
			Text: `-- daily income report
SELECT prod_class4_name AS product_line_name, SUM(shouldincome_after) AS income_after_tax
FROM 23_customer_bg GROUP BY prod_class4_name`,
		}})
	if err != nil {
		t.Fatal(err)
	}
	p.AddGlossary(Glossary{
		Term: "income", Definition: "income after tax",
		MapsToColumn: "shouldincome_after", MapsToTable: "23_customer_bg",
	})

	ans, err := p.Ask("total income by product line", "23_customer_bg")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.SQL, "shouldincome_after") {
		t.Errorf("knowledge did not resolve the jargon: %s", ans.SQL)
	}
}

func TestTokenUsageAccumulates(t *testing.T) {
	p := demoPlatform(t)
	if _, err := p.Ask("total revenue by region", "sales"); err != nil {
		t.Fatal(err)
	}
	prompt, _, calls := p.TokenUsage()
	if prompt == 0 || calls == 0 {
		t.Errorf("usage = %d tokens, %d calls", prompt, calls)
	}
}

func TestNotebookSession(t *testing.T) {
	p := demoPlatform(t)
	nb := p.NewNotebook("analysis")
	sqlID, err := nb.AddSQL("SELECT region, revenue FROM sales", "raw")
	if err != nil {
		t.Fatal(err)
	}
	pyID, err := nb.AddPython("clean = raw.dropna()")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nb.AddMarkdown("## Revenue notes"); err != nil {
		t.Fatal(err)
	}
	if deps := nb.DependsOn(pyID); len(deps) != 1 || deps[0] != sqlID {
		t.Errorf("python deps = %v", deps)
	}
	ctx := nb.ContextFor("clean the raw dataframe with pandas")
	if len(ctx.CellIDs) == 0 || ctx.Tokens <= 0 {
		t.Errorf("context = %+v", ctx)
	}
	if ctx.Tokens >= nb.FullContextTokens()+1 {
		t.Error("pruned context should not exceed full context")
	}
	if nb.NumCells() != 3 {
		t.Errorf("cells = %d", nb.NumCells())
	}
	if err := nb.UpdateCell(pyID, "clean = raw.fillna(0)"); err != nil {
		t.Fatal(err)
	}
	if err := nb.DeleteCell(pyID); err != nil {
		t.Fatal(err)
	}
}

func TestNotebookSQLExecutionError(t *testing.T) {
	p := demoPlatform(t)
	nb := p.NewNotebook("broken")
	if _, err := nb.AddSQL("SELECT nothing FROM missing_table", "x"); err == nil {
		t.Fatal("expected execution error")
	}
	// The cell is kept as a draft.
	if nb.NumCells() != 1 {
		t.Errorf("cells = %d", nb.NumCells())
	}
}
