package datalab

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

func durable(t *testing.T, dir string) *Platform {
	t.Helper()
	p, err := OpenDurable(dir, DurabilityOptions{})
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return p
}

func queryStrings(t *testing.T, p *Platform, sql string) [][]string {
	t.Helper()
	res, err := p.QueryCtx(context.Background(), sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res.Strings()
}

// TestOpenDurableRoundTrip is the platform-level durability loop:
// register, ingest, close, reopen, and prove recovered queries return
// byte-identical results.
func TestOpenDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := durable(t, dir)
	if err := p.LoadRecords("metrics", []string{"host", "cpu"}, [][]string{
		{"a", "10"}, {"b", "20"},
	}); err != nil {
		t.Fatal(err)
	}
	in, err := p.Ingest("metrics")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := in.Append(fmt.Sprintf("h%d", i%7), fmt.Sprintf("%d", i)); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 {
			if _, err := in.PublishErr(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := in.PublishErr(); err != nil {
		t.Fatal(err)
	}

	const probe = "SELECT host, COUNT(*), SUM(cpu) FROM metrics GROUP BY host ORDER BY host"
	want := queryStrings(t, p, probe)
	wantStats := p.DurabilityStats()
	if !wantStats.Enabled || wantStats.WALBytes == 0 || wantStats.SnapshotVersion < 2 {
		t.Fatalf("durability stats look wrong: %+v", wantStats)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := durable(t, dir)
	defer p2.Close()
	got := queryStrings(t, p2, probe)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("recovered query diverged:\nwant %v\ngot  %v", want, got)
	}
	st := p2.DurabilityStats()
	if st.RecoveredRows != 502 {
		t.Fatalf("RecoveredRows = %d, want 502", st.RecoveredRows)
	}
	if st.SnapshotVersion != wantStats.SnapshotVersion {
		t.Fatalf("recovered snapshot version %d, want %d", st.SnapshotVersion, wantStats.SnapshotVersion)
	}

	// The recovered platform keeps ingesting durably.
	in2, err := p2.Ingest("metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := in2.Append("zz", "999"); err != nil {
		t.Fatal(err)
	}
	if n, err := in2.PublishErr(); err != nil || n != 503 {
		t.Fatalf("publish after recovery: n=%d err=%v", n, err)
	}
}

// TestOpenDurableCheckpoint proves the platform-level checkpoint path
// and that a checkpointed catalog recovers identically.
func TestOpenDurableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	p := durable(t, dir)
	if err := p.LoadRecords("kv", []string{"k", "v"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.AppendRecords("kv", [][]string{{"x", "1"}, {"y", "2"}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.AppendRecords("kv", [][]string{{"z", "3"}}); err != nil {
		t.Fatal(err)
	}
	if st := p.DurabilityStats(); st.Checkpoints != 1 || st.LastCheckpointUnixMilli == 0 {
		t.Fatalf("stats after checkpoint: %+v", st)
	}
	p.Close()

	p2 := durable(t, dir)
	defer p2.Close()
	got := queryStrings(t, p2, "SELECT k, v FROM kv ORDER BY k")
	want := [][]string{{"x", "1"}, {"y", "2"}, {"z", "3"}}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("want %v, got %v", want, got)
	}
}

// TestMemoryOnlyPlatformUnchanged pins the memory-only surface: stats
// zeroed, Close/Checkpoint no-ops.
func TestMemoryOnlyPlatformUnchanged(t *testing.T) {
	p := MustNew()
	if st := p.DurabilityStats(); st.Enabled || st.WALBytes != 0 {
		t.Fatalf("memory-only stats: %+v", st)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
