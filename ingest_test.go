package datalab

import (
	"context"
	"strings"
	"testing"
)

// ingestPlatform registers a small events table to append into.
func ingestPlatform(t *testing.T) *Platform {
	t.Helper()
	p := MustNew(WithSeed("ingest"))
	csv := "id,amount\n1,10\n2,20\n3,30\n"
	if err := p.LoadCSV("events", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAppendRecordsVisibleToNewQueries(t *testing.T) {
	p := ingestPlatform(t)
	if err := p.AppendRecords("events", [][]string{{"4", "40"}, {"5", "50"}}); err != nil {
		t.Fatal(err)
	}
	_, rows, err := p.Query("SELECT COUNT(*), SUM(amount) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "5" || rows[0][1] != "150" {
		t.Fatalf("after append: %v", rows)
	}
	if err := p.AppendRecords("nope", nil); err == nil {
		t.Fatal("AppendRecords on unknown table should fail")
	}
}

func TestAppendDoesNotDisturbOpenResult(t *testing.T) {
	p := ingestPlatform(t)
	res, err := p.QueryCtx(context.Background(), "SELECT id FROM events")
	if err != nil {
		t.Fatal(err)
	}
	// Publish two more snapshots while the cursor is still open.
	for i := 0; i < 2; i++ {
		if err := p.AppendRecords("events", [][]string{{"9", "90"}}); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	for b := res.Next(); b != nil; b = res.Next() {
		seen += b.NumRows()
	}
	if seen != 3 {
		t.Fatalf("open cursor saw %d rows, want the 3 from its snapshot", seen)
	}
	_, rows, err := p.Query("SELECT COUNT(*) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "5" {
		t.Fatalf("fresh query count = %v, want 5", rows[0][0])
	}
}

func TestIngestorBatchesUntilPublish(t *testing.T) {
	p := ingestPlatform(t)
	in, err := p.Ingest("events")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Append("6", "60"); err != nil {
		t.Fatal(err)
	}
	if err := in.Append("7"); err != nil { // short row: trailing NULL
		t.Fatal(err)
	}
	if got := in.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	_, rows, err := p.Query("SELECT COUNT(*) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "3" {
		t.Fatalf("staged rows leaked into a query: count = %v", rows[0][0])
	}
	if total := in.Publish(); total != 5 {
		t.Fatalf("Publish total = %d, want 5", total)
	}
	_, rows, err = p.Query("SELECT COUNT(*), SUM(amount) FROM events WHERE amount IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != "4" || rows[0][1] != "120" {
		t.Fatalf("after publish: %v", rows)
	}
	if _, err := p.Ingest("missing"); err == nil {
		t.Fatal("Ingest on unknown table should fail")
	}
}

func TestNotebookAppendRecords(t *testing.T) {
	p := ingestPlatform(t)
	s := p.NewNotebook("ingest")
	id, err := s.AddSQL("SELECT COUNT(*) FROM events", "n")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRecords("events", [][]string{{"4", "40"}}); err != nil {
		t.Fatal(err)
	}
	res, err := s.RunSQL(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Next()
	if v, ok := b.Int64(0, 0); !ok || v != 4 {
		t.Fatalf("re-run count = %v, want 4", v)
	}
}
