package datalab

import (
	"testing"
)

// Window, CASE, and subquery benchmarks over the canonical 100k-row sales
// table. The window families measure the full pipeline the feature rides
// on — partitioning, the memcmp sort-key kernel per partition, and the
// shared accumulator — against the scalar reference at 10k (the scalar
// path re-evaluates keys row-at-a-time, so it gets the smaller table like
// the join benches). Run with:
//
//	go test -bench='Window|MovingSum|Case|Subquery' -benchmem

const (
	benchWindowRowNumberQuery = "SELECT id, ROW_NUMBER() OVER (PARTITION BY region ORDER BY amount DESC) FROM big"
	benchWindowRankQuery      = "SELECT id, RANK() OVER (ORDER BY qty), DENSE_RANK() OVER (ORDER BY qty) FROM big"
	benchMovingSumQuery       = "SELECT id, SUM(amount) OVER (PARTITION BY region ORDER BY id ROWS BETWEEN 100 PRECEDING AND CURRENT ROW) FROM big"
	benchRunningSumQuery      = "SELECT id, SUM(amount) OVER (PARTITION BY region ORDER BY id) FROM big"
	benchScalarSubqueryQuery  = "SELECT id FROM big WHERE amount > (SELECT AVG(amount) FROM big)"
	benchInSubqueryQuery      = "SELECT id FROM big WHERE product_id IN (SELECT pid FROM product WHERE price > 100.0)"
	benchCaseSimpleQuery      = "SELECT id, CASE region WHEN 'emea' THEN 1 WHEN 'apac' THEN 2 ELSE 0 END FROM big"
	benchCaseSearchedQuery    = "SELECT id, CASE WHEN amount > 750 THEN 'high' WHEN amount > 250 THEN 'mid' ELSE 'low' END FROM big"
)

func benchQuerySized(b *testing.B, q string, rows int, scalar bool) {
	b.Helper()
	cat := benchBigCatalog(rows)
	run := cat.Query
	if scalar {
		run = cat.QueryScalar
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowRowNumber100k(b *testing.B) {
	benchQuerySized(b, benchWindowRowNumberQuery, benchRows, false)
}
func BenchmarkWindowRowNumber10kScalar(b *testing.B) {
	benchQuerySized(b, benchWindowRowNumberQuery, 10_000, true)
}
func BenchmarkWindowRank100k(b *testing.B) {
	benchQuerySized(b, benchWindowRankQuery, benchRows, false)
}
func BenchmarkMovingSum100k(b *testing.B) { benchQuerySized(b, benchMovingSumQuery, benchRows, false) }
func BenchmarkWindowRunningSum100k(b *testing.B) {
	benchQuerySized(b, benchRunningSumQuery, benchRows, false)
}
func BenchmarkScalarSubquery100k(b *testing.B) {
	benchQuerySized(b, benchScalarSubqueryQuery, benchRows, false)
}
func BenchmarkInSubquery100k(b *testing.B) {
	benchQuerySized(b, benchInSubqueryQuery, benchRows, false)
}
func BenchmarkCaseSimple100k(b *testing.B) {
	benchQuerySized(b, benchCaseSimpleQuery, benchRows, false)
}
func BenchmarkCaseSearched100k(b *testing.B) {
	benchQuerySized(b, benchCaseSearchedQuery, benchRows, false)
}
