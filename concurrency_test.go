package datalab

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentAskAndQuery drives one Platform from many goroutines mixing
// NL queries (which plan multi-agent executions and may register derived
// tables) with raw SQL. It exists to run under -race: the catalog's RWMutex,
// the platform's state mutex, and the engine's bounded worker pool all get
// exercised together.
func TestConcurrentAskAndQuery(t *testing.T) {
	p := MustNew(WithSeed("race-test"))
	cols := []string{"region", "product", "revenue"}
	var rows [][]string
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < 200; i++ {
		rows = append(rows, []string{
			regions[i%len(regions)],
			fmt.Sprintf("p%d", i%7),
			fmt.Sprintf("%d", (i*37)%500),
		})
	}
	if err := p.LoadRecords("sales", cols, rows); err != nil {
		t.Fatal(err)
	}

	asks := []string{
		"total revenue by region",
		"average revenue by product as a bar chart",
		"show anomalies in revenue",
	}
	sqls := []string{
		"SELECT region, SUM(revenue) FROM sales GROUP BY region ORDER BY 2 DESC",
		"SELECT product, COUNT(*) FROM sales WHERE revenue > 100 GROUP BY product",
		"SELECT * FROM sales WHERE region = 'east' LIMIT 10",
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if (g+i)%2 == 0 {
					if _, err := p.Ask(asks[(g+i)%len(asks)], "sales"); err != nil {
						t.Errorf("Ask: %v", err)
						return
					}
				} else {
					if _, _, err := p.Query(sqls[(g+i)%len(sqls)]); err != nil {
						t.Errorf("Query: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if n := len(p.Tables()); n < 1 {
		t.Fatalf("tables = %d", n)
	}
}
