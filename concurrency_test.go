package datalab

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentAskAndQuery drives one Platform from many goroutines mixing
// NL queries (which plan multi-agent executions and may register derived
// tables) with raw SQL. It exists to run under -race: the catalog's RWMutex,
// the platform's state mutex, and the engine's bounded worker pool all get
// exercised together.
func TestConcurrentAskAndQuery(t *testing.T) {
	p := MustNew(WithSeed("race-test"))
	cols := []string{"region", "product", "revenue"}
	var rows [][]string
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < 200; i++ {
		rows = append(rows, []string{
			regions[i%len(regions)],
			fmt.Sprintf("p%d", i%7),
			fmt.Sprintf("%d", (i*37)%500),
		})
	}
	if err := p.LoadRecords("sales", cols, rows); err != nil {
		t.Fatal(err)
	}

	asks := []string{
		"total revenue by region",
		"average revenue by product as a bar chart",
		"show anomalies in revenue",
	}
	sqls := []string{
		"SELECT region, SUM(revenue) FROM sales GROUP BY region ORDER BY 2 DESC",
		"SELECT product, COUNT(*) FROM sales WHERE revenue > 100 GROUP BY product",
		"SELECT * FROM sales WHERE region = 'east' LIMIT 10",
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if (g+i)%2 == 0 {
					if _, err := p.Ask(asks[(g+i)%len(asks)], "sales"); err != nil {
						t.Errorf("Ask: %v", err)
						return
					}
				} else {
					if _, _, err := p.Query(sqls[(g+i)%len(sqls)]); err != nil {
						t.Errorf("Query: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if n := len(p.Tables()); n < 1 {
		t.Fatalf("tables = %d", n)
	}
}

// TestConcurrentPreparedAndQueryCtx hammers one Platform with shared
// prepared statements, ad-hoc QueryCtx calls (all racing on the LRU plan
// cache), and mid-flight cancellations, from many goroutines under -race.
// One *Stmt is deliberately shared across goroutines: prepared handles are
// immutable and must be safe for concurrent Exec.
func TestConcurrentPreparedAndQueryCtx(t *testing.T) {
	p := MustNew(WithSeed("prepared-race"))
	cols := []string{"region", "revenue"}
	var rows [][]string
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < 500; i++ {
		rows = append(rows, []string{regions[i%len(regions)], fmt.Sprintf("%d", (i*37)%900)})
	}
	if err := p.LoadRecords("sales", cols, rows); err != nil {
		t.Fatal(err)
	}
	shared, err := p.Prepare("SELECT region, SUM(revenue) FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	adhoc := []string{
		"SELECT region, revenue FROM sales WHERE revenue > 400",
		"SELECT revenue FROM sales ORDER BY revenue DESC LIMIT 7",
		"SELECT COUNT(*) FROM sales WHERE region = 'east'",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (g + i) % 3 {
				case 0:
					res, err := shared.Exec(context.Background())
					if err != nil {
						t.Errorf("prepared Exec: %v", err)
						return
					}
					if res.NumRows() != 4 {
						t.Errorf("prepared Exec rows = %d", res.NumRows())
						return
					}
				case 1:
					if _, err := p.QueryCtx(context.Background(), adhoc[i%len(adhoc)]); err != nil {
						t.Errorf("QueryCtx: %v", err)
						return
					}
				default:
					ctx, cancel := context.WithCancel(context.Background())
					cancel() // pre-cancelled: must fail fast, never partially run
					if _, err := p.QueryCtx(ctx, adhoc[i%len(adhoc)]); err != context.Canceled {
						t.Errorf("cancelled QueryCtx err = %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentLearnAndAsk stresses the knowledge graph's copy-on-write
// snapshot swap under -race: writers keep running LearnKnowledge and
// AddGlossary (each of which clones the graph, mutates the clone, and
// publishes it) while readers Ask and Query against whatever snapshot
// their in-flight runtime captured. Before the COW swap this raced: the
// writers mutated graph maps that an Ask already past its RLock was
// reading through the retriever.
func TestConcurrentLearnAndAsk(t *testing.T) {
	p := MustNew(WithSeed("cow-race"))
	if err := p.LoadRecords("23_customer_bg",
		[]string{"prod_class4_name", "shouldincome_after", "ftime"},
		[][]string{
			{"TencentBI", "1000.5", "2024-01-05"},
			{"TencentCloud", "2500.0", "2024-02-03"},
			{"TencentBI", "1800.25", "2024-03-10"},
			{"TencentGames", "920.0", "2024-03-11"},
		}); err != nil {
		t.Fatal(err)
	}
	// Seed one bundle so readers have knowledge to retrieve from the start.
	learn := func(db string) error {
		return p.LearnKnowledge(db, "23_customer_bg",
			[]ColumnSchema{
				{Name: "prod_class4_name", Type: "string"},
				{Name: "shouldincome_after", Type: "double"},
				{Name: "ftime", Type: "date"},
			},
			[]Script{{
				ID:       "daily.sql",
				Language: "sql",
				Text: `SELECT prod_class4_name AS product_line_name, SUM(shouldincome_after) AS income_after_tax
FROM 23_customer_bg GROUP BY prod_class4_name`,
			}})
	}
	if err := learn("sales_db"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 9; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0: // learner: new database name each round → new nodes
				for i := 0; i < 3; i++ {
					if err := learn(fmt.Sprintf("db_%d_%d", g, i)); err != nil {
						t.Errorf("LearnKnowledge: %v", err)
						return
					}
				}
			case 1: // glossary writer: cheap, tight mutation loop
				for i := 0; i < 40; i++ {
					p.AddGlossary(Glossary{
						Term:         fmt.Sprintf("income%d_%d", g, i),
						Definition:   "income after tax",
						Aliases:      []string{fmt.Sprintf("rev%d_%d", g, i)},
						MapsToColumn: "shouldincome_after",
						MapsToTable:  "23_customer_bg",
					})
				}
			default: // readers: each Ask retrieves from its rt snapshot
				for i := 0; i < 8; i++ {
					if _, err := p.Ask("total income by product line", "23_customer_bg"); err != nil {
						t.Errorf("Ask: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The final snapshot must still resolve jargon end-to-end.
	ans, err := p.Ask("total income by product line", "23_customer_bg")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.SQL, "shouldincome_after") {
		t.Errorf("post-stress snapshot lost jargon resolution: %s", ans.SQL)
	}
}
