package datalab

import "datalab/internal/sqlengine"

// The typed result API. A query executed through Platform.QueryCtx (or a
// prepared Stmt) hands back a *Result: a cursor over the columnar result
// set that iterates zero-copy batches instead of materializing rows.
//
//	res, err := p.QueryCtx(ctx, "SELECT region, amount FROM sales WHERE amount > 100")
//	if err != nil { ... }
//	total := 0.0
//	for b := res.Next(); b != nil; b = res.Next() {
//		for i := 0; i < b.NumRows(); i++ {
//			if v, ok := b.Float64(1, i); ok {
//				total += v
//			}
//		}
//	}
//
// Plain projections (no grouping, ordering, or DISTINCT) never materialize
// anything: the Result's batches are read-only views straight over the
// catalog's column storage, restricted by the WHERE selection. Aggregated,
// ordered, or computed results are built once and then viewed batch by
// batch. Result.Strings() materializes the old [][]string shape for
// callers migrating incrementally.
//
// The types are defined in internal/sqlengine (the executor produces them
// directly); the aliases below are the public names.

// Result is a typed, batch-iterable handle over a query's columnar result
// set. See the package documentation above for the iteration pattern.
type Result = sqlengine.Result

// Batch is one window (up to 1024 rows) of a Result: zero-copy column
// views with typed, null-aware accessors (Int64, Float64, String, IsNull)
// and whole-column slab accessors (Int64s, Float64s, StringsCol).
type Batch = sqlengine.Batch

// Stmt is a prepared statement: parsed and planned once by
// Platform.Prepare, executed many times with Exec. Exec never re-parses,
// so repeated execution amortizes parse/plan cost to zero.
//
// Statements may declare placeholders — positional `?` or named `:name` —
// anywhere a literal is legal (WHERE, join ON residuals, HAVING, IN lists,
// LIMIT/OFFSET), resolved per execution by Exec(ctx, args...) or
// Bind/BindNamed:
//
//	stmt, _ := p.Prepare("SELECT region, SUM(amount) FROM sales WHERE amount > ? GROUP BY region")
//	for _, threshold := range thresholds {
//		res, _ := stmt.Exec(ctx, threshold)
//		...
//	}
//
// Hot loops that fmt.Sprintf literals into the SQL text instead should
// migrate to placeholders: the inlined form re-lexes every iteration (the
// fingerprint cache saves the parse, not the scan of the text), while a
// bound execution touches the cached plan directly.
type Stmt = sqlengine.Prepared

// Bound is a prepared statement with arguments attached (Stmt.Bind /
// Stmt.BindNamed). It is immutable, safe for concurrent Exec, and reusable.
type Bound = sqlengine.Bound

// PlanCacheStats is a snapshot of the catalog's plan-cache counters:
// hits, misses, evictions, fingerprinted lookups, and current size/cap.
// Obtain one with Platform.PlanCacheStats.
type PlanCacheStats = sqlengine.PlanCacheStats
