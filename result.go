package datalab

import "datalab/internal/sqlengine"

// The typed result API. A query executed through Platform.QueryCtx (or a
// prepared Stmt) hands back a *Result: a cursor over the columnar result
// set that iterates zero-copy batches instead of materializing rows.
//
//	res, err := p.QueryCtx(ctx, "SELECT region, amount FROM sales WHERE amount > 100")
//	if err != nil { ... }
//	total := 0.0
//	for b := res.Next(); b != nil; b = res.Next() {
//		for i := 0; i < b.NumRows(); i++ {
//			if v, ok := b.Float64(1, i); ok {
//				total += v
//			}
//		}
//	}
//
// Plain projections (no grouping, ordering, or DISTINCT) never materialize
// anything: the Result's batches are read-only views straight over the
// catalog's column storage, restricted by the WHERE selection. Aggregated,
// ordered, or computed results are built once and then viewed batch by
// batch. Result.Strings() materializes the old [][]string shape for
// callers migrating incrementally.
//
// The types are defined in internal/sqlengine (the executor produces them
// directly); the aliases below are the public names.

// Result is a typed, batch-iterable handle over a query's columnar result
// set. See the package documentation above for the iteration pattern.
type Result = sqlengine.Result

// Batch is one window (up to 1024 rows) of a Result: zero-copy column
// views with typed, null-aware accessors (Int64, Float64, String, IsNull)
// and whole-column slab accessors (Int64s, Float64s, StringsCol).
type Batch = sqlengine.Batch

// Stmt is a prepared statement: parsed and planned once by
// Platform.Prepare, executed many times with Exec. Exec never re-parses,
// so repeated execution amortizes parse/plan cost to zero.
type Stmt = sqlengine.Prepared
